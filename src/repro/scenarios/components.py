"""Registration shims: adopt every pre-existing pluggable piece.

The codebase grew half a dozen hand-rolled name tables before the
component registry existed -- ``SCHEDULER_REGISTRY``, ``ROUTERS``,
``SHED_POLICIES``, ``PICKERS``, ``FAMILIES``, ``PROFIT_SAMPLERS``,
``ARRIVAL_PROCESSES``.  :func:`install_default_components` folds all
of them (plus engine backends, clocks, fault schedules, autoscalers,
workload presets and sinks) into the shared
:data:`~repro.scenarios.registry.REGISTRY` exactly once, so scenario
specs, CLIs and docs all draw component names from one place.

The install is idempotent and deferred: importing
``repro.scenarios`` does *not* drag in the cluster, gateway or
resilience stacks -- the heavy imports happen inside the install call,
which every registry consumer makes lazily.
"""

from __future__ import annotations

from typing import Any

from repro.scenarios.registry import REGISTRY

#: Component kinds the default install populates, in catalog order.
KINDS = (
    "scheduler",
    "engine",
    "picker",
    "router",
    "shed-policy",
    "arrival-process",
    "dag-family",
    "profit",
    "profit-fn",
    "workload-preset",
    "faults",
    "autoscaler",
    "clock",
    "sink",
)

_installed = False


def install_default_components() -> None:
    """Populate :data:`REGISTRY` with every built-in component (idempotent)."""
    global _installed
    if _installed:
        return
    _installed = True
    _install_schedulers()
    _install_engines()
    _install_pickers()
    _install_routers()
    _install_shed_policies()
    _install_workloads()
    _install_faults()
    _install_autoscalers()
    _install_clocks()
    _install_sinks()


# ----------------------------------------------------------------------
# Schedulers: the paper's S plus every baseline and ablation.
# ----------------------------------------------------------------------
def _install_schedulers() -> None:
    from repro.baselines import (
        AdmissionEDF,
        DoublingNonClairvoyant,
        EagerPromotionSNS,
        FederatedScheduler,
        FIFOScheduler,
        GlobalEDF,
        GreedyDensity,
        LeastLaxityFirst,
        RandomScheduler,
        SNSNoAdmission,
        SNSWorkDensity,
        WorkConservingSNS,
    )
    from repro.core.sns import SNSScheduler

    # accepts_epsilon marks schedulers whose constructor takes the
    # paper's slack parameter; the builder threads workload.epsilon
    # into them exactly like the CLIs' hand-rolled kwargs did.
    for name, factory, takes_eps in [
        ("sns", SNSScheduler, True),
        ("fifo", FIFOScheduler, False),
        ("edf", GlobalEDF, False),
        ("llf", LeastLaxityFirst, False),
        ("greedy", GreedyDensity, False),
        ("random", RandomScheduler, False),
        ("eager-promotion", EagerPromotionSNS, True),
        ("sns-no-admission", SNSNoAdmission, True),
        ("sns-work-density", SNSWorkDensity, True),
        ("work-conserving", WorkConservingSNS, True),
        ("federated", FederatedScheduler, False),
        ("nonclairvoyant", DoublingNonClairvoyant, True),
        ("admission-edf", AdmissionEDF, False),
    ]:
        REGISTRY.register(
            "scheduler", name, factory, accepts_epsilon=takes_eps
        )


# ----------------------------------------------------------------------
# Engine backends.
# ----------------------------------------------------------------------
def _install_engines() -> None:
    from repro.sim._legacy_engine import LegacySimulator
    from repro.sim.array_engine import ArraySimulator
    from repro.sim.engine import Simulator

    REGISTRY.register(
        "engine",
        "event",
        Simulator,
        summary="Event-driven engine (decision-point jumps; the default).",
    )
    REGISTRY.register(
        "engine",
        "array",
        ArraySimulator,
        summary=(
            "Numpy struct-of-arrays core, bit-identical to 'event';"
            " delegates to the event loop when a config needs it."
        ),
    )
    REGISTRY.register(
        "engine",
        "legacy",
        LegacySimulator,
        summary="Pre-rewrite stepper, frozen verbatim (bit-identity oracle).",
    )


def _install_pickers() -> None:
    from repro.sim.picker import PICKERS

    for name, cls in PICKERS.items():
        REGISTRY.register("picker", name, cls)


def _install_routers() -> None:
    from repro.cluster.router import ROUTERS

    for name, cls in ROUTERS.items():
        REGISTRY.register("router", name, cls)


def _install_shed_policies() -> None:
    from repro.service.queue import SHED_POLICIES

    for name, cls in SHED_POLICIES.items():
        REGISTRY.register("shed-policy", name, cls)


# ----------------------------------------------------------------------
# Workload space: arrival processes, DAG families, profit samplers,
# and named presets (partial workload sections by name).
# ----------------------------------------------------------------------
def _install_workloads() -> None:
    from repro.workloads.dag_families import FAMILIES, make_family, mixture
    from repro.workloads.profits import (
        PROFIT_FN_SAMPLERS,
        PROFIT_SAMPLERS,
    )

    # Arrival shapes are config switches on the load generator, not
    # classes; register a descriptor factory so the names still
    # validate and appear in the catalog.
    for name, summary in [
        ("poisson", "Memoryless arrivals at the calibrated rate."),
        ("diurnal", "Sinusoidal day/night rate modulation."),
        ("flash-crowd", "Baseline traffic with a concentrated spike."),
        ("sessions", "Pareto-sized session trains (heavy-tailed)."),
    ]:
        REGISTRY.register(
            "arrival-process", name, _named(name), summary=summary
        )

    for name, factory in FAMILIES.items():
        REGISTRY.register("dag-family", name, factory)
    REGISTRY.register(
        "dag-family",
        "mixed",
        lambda: mixture([factory() for factory in FAMILIES.values()]),
        summary="Uniform mixture over every registered family.",
    )
    assert make_family  # imported for its side of the contract

    for name, factory in PROFIT_SAMPLERS.items():
        REGISTRY.register("profit", name, factory)
    for name, factory in PROFIT_FN_SAMPLERS.items():
        REGISTRY.register("profit-fn", name, factory)

    # Named presets: partial [workload] sections a spec or matrix axis
    # can apply by name (spec values still win over preset values).
    for name, overrides, summary in [
        (
            "steady",
            {"load": 1.0, "process": "poisson"},
            "Saturation-rate Poisson traffic (load = capacity).",
        ),
        (
            "light",
            {"load": 0.5, "process": "poisson"},
            "Half-capacity Poisson traffic.",
        ),
        (
            "overload",
            {"load": 3.0, "process": "poisson"},
            "3x-capacity overload (admission control decides profit).",
        ),
        (
            "diurnal",
            {"load": 1.2, "process": "diurnal", "kind": "open-loop"},
            "Day/night sinusoid peaking above capacity.",
        ),
        (
            "flash-crowd",
            {"load": 1.0, "process": "flash-crowd", "kind": "open-loop"},
            "Steady traffic with a 20% spike burst.",
        ),
        (
            "heavy-tail",
            {"load": 1.0, "process": "sessions", "kind": "open-loop"},
            "Pareto session trains at saturation rate.",
        ),
        (
            "tight-deadlines",
            {"deadline_policy": "tight"},
            "Clairvoyant-limit deadlines (violates Theorem 2's slack).",
        ),
    ]:
        REGISTRY.register(
            "workload-preset", name, _named(name, dict(overrides)),
            summary=summary,
        )


# ----------------------------------------------------------------------
# Faults, autoscalers, clocks, sinks.
# ----------------------------------------------------------------------
def _install_faults() -> None:
    from repro.resilience.chaos import (
        COORDINATION_FAULT_KINDS,
        CORE_FAULT_KINDS,
    )

    REGISTRY.register(
        "faults", "none", _named("none", {}),
        summary="Fault-free run (the default).",
    )
    REGISTRY.register(
        "faults", "kill", _named("kill", {}),
        summary="Kill one shard at a fixed time; recover from checkpoint.",
    )
    REGISTRY.register(
        "faults", "chaos", _named("chaos", {}),
        summary="Scripted or seeded chaos schedule (crash/hang/slow-rpc/...).",
    )
    # every chaos kind is also a standalone fault: one seeded event at
    # ``faults.shard`` / ``faults.at`` over a supervised cluster
    core = {
        "crash": "Crash one shard; supervised checkpoint+WAL recovery.",
        "hang": "Hang one shard past its heartbeat deadline.",
        "slow-rpc": "Inflate one shard's command latency.",
        "pipe-drop": "Sever one shard's command channel mid-run.",
        "corrupt-checkpoint": "Corrupt a checkpoint; recovery falls back.",
    }
    coordination = {
        "steal-interrupt": (
            "Kill the steal donor between transaction phases; the "
            "journal replays to exactly-one placement."
        ),
        "scale-during-crash": (
            "Crash a shard and resize the elastic prefix in the same "
            "tick."
        ),
        "ledger-partition": (
            "Stale the coordinator's band ledger; routing degrades to "
            "anchors until the next refresh."
        ),
        "tick-stall": (
            "Freeze one gateway tick (no dispatch, no autoscale); "
            "deadline-aware retry absorbs the stall."
        ),
    }
    for kind in CORE_FAULT_KINDS:
        REGISTRY.register("faults", kind, _named(kind, {}), summary=core[kind])
    for kind in COORDINATION_FAULT_KINDS:
        REGISTRY.register(
            "faults", kind, _named(kind, {}), summary=coordination[kind]
        )


def _install_autoscalers() -> None:
    from repro.gateway.autoscale import Autoscaler

    REGISTRY.register(
        "autoscaler", "none", _named("none", {}),
        summary="Fixed shard count (no autoscaling).",
    )
    REGISTRY.register("autoscaler", "hysteresis", Autoscaler)


def _install_clocks() -> None:
    from repro.gateway.clock import VirtualClock, WallClock

    REGISTRY.register("clock", "wall", WallClock)
    REGISTRY.register("clock", "virtual", VirtualClock)


def _install_sinks() -> None:
    REGISTRY.register(
        "sink", "metrics-jsonl", _named("metrics-jsonl", {}),
        summary="Telemetry samples as JSONL (repro-serve --metrics).",
    )
    REGISTRY.register(
        "sink", "trace-jsonl", _named("trace-jsonl", {}),
        summary="Structured decision trace as JSONL (repro-trace input).",
    )
    REGISTRY.register(
        "sink", "kpi-jsonl", _named("kpi-jsonl", {}),
        summary="Gateway KPI snapshot history as JSONL.",
    )


class _named:
    """Factory for enum-like components: returns its name (and payload).

    Some components are configuration switches rather than classes --
    an arrival process is a branch inside the load generator, a
    workload preset is a dict of overrides.  Registering them through
    this descriptor keeps name validation, suggestions and the catalog
    uniform across real and enum-like components.
    """

    def __init__(self, name: str, payload: Any = None) -> None:
        self.name = name
        self.payload = payload
        self.__doc__ = None

    def __call__(self) -> Any:
        return self.name if self.payload is None else dict(self.payload)
