"""Declarative scenarios: specs, a component registry, and a builder.

The subsystem has four layers:

- :mod:`repro.scenarios.registry` -- ``(kind, name) -> factory`` with
  typo-tolerant lookup; :data:`REGISTRY` is the shared instance.
- :mod:`repro.scenarios.components` -- shims adopting every
  pre-existing pluggable piece into the registry.
- :mod:`repro.scenarios.spec` -- :class:`ScenarioSpec`, a validated,
  canonically-serializable (TOML/JSON) description of one run.
- :mod:`repro.scenarios.builder` -- :class:`ScenarioBuilder`, the
  setup/run/collect/teardown lifecycle that assembles the batch
  simulator, the scheduling service, a (resilient) cluster, or the
  gateway from a spec and returns a uniform :class:`ScenarioResult`.

``repro-scenario`` (:mod:`repro.scenarios.cli`) exposes run /
validate / list / matrix on top.
"""

from repro.errors import ScenarioError
from repro.scenarios.builder import (
    ScenarioBuilder,
    ScenarioResult,
    build_workload,
    run_scenario,
)
from repro.scenarios.components import KINDS, install_default_components
from repro.scenarios.matrix import (
    AXIS_SHORTHANDS,
    MatrixResult,
    expand_matrix,
    run_matrix,
)
from repro.scenarios.registry import REGISTRY, Component, ComponentRegistry, register
from repro.scenarios.spec import ScenarioSpec, load_spec, loads_spec

__all__ = [
    "AXIS_SHORTHANDS",
    "Component",
    "ComponentRegistry",
    "KINDS",
    "MatrixResult",
    "REGISTRY",
    "ScenarioBuilder",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "build_workload",
    "expand_matrix",
    "install_default_components",
    "load_spec",
    "loads_spec",
    "register",
    "run_matrix",
    "run_scenario",
]
