"""Matrix runs: axis overrides x seeds -> one comparison table.

``repro-scenario matrix`` takes a base spec plus axes like
``scheduler=sns,edf,nonclairvoyant workload=overload,diurnal
shards=1,4`` and runs the full cross product through the existing
parallel sweep runner (:func:`repro.analysis.sweep.sweep_values`), so
matrix expansion inherits the sweep's guarantees: cells are keyed by
task order and each cell sees exactly the same ``(point, seed)`` pair
serially and in parallel -- a 2-worker matrix run is cell-for-cell
identical to the serial expansion.

Each cell also computes an OPT upper bound on its own workload
(:func:`repro.analysis.opt.opt_bound`) and reports the achieved
fraction, so the table reads as an empirical competitive-ratio
comparison, not just raw profits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.analysis.stats import Aggregate
from repro.errors import ScenarioError
from repro.scenarios.builder import ScenarioBuilder, build_workload
from repro.scenarios.spec import ScenarioSpec

#: Bare axis name -> dotted spec path.  ``workload=`` takes
#: workload-preset names; anything already dotted passes through.
AXIS_SHORTHANDS: dict[str, str] = {
    "scheduler": "scheduler.name",
    "workload": "workload.preset",
    "shards": "cluster.shards",
    "router": "cluster.router",
    "picker": "engine.picker",
    "engine": "engine.backend",
    "family": "workload.family",
    "load": "workload.load",
    "epsilon": "workload.epsilon",
    "mode": "scenario.mode",
    "policy": "service.shed_policy",
    "clock": "gateway.clock",
}

#: The hidden grid axis carrying the base spec into worker processes.
_SPEC_AXIS = "__base_spec__"


def resolve_axis(name: str) -> str:
    """Expand an axis shorthand to its dotted spec path."""
    if "." in name:
        return name
    try:
        return AXIS_SHORTHANDS[name]
    except KeyError:
        import difflib

        suggestions = difflib.get_close_matches(
            name, list(AXIS_SHORTHANDS), n=3, cutoff=0.4
        )
        hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
        raise ScenarioError(
            f"unknown matrix axis {name!r}{hint} shorthands: "
            f"{sorted(AXIS_SHORTHANDS)} (or any dotted spec path)",
            location=name,
            suggestions=suggestions,
        ) from None


def expand_matrix(
    base: ScenarioSpec, axes: Mapping[str, Sequence[Any]]
) -> list[tuple[dict[str, Any], ScenarioSpec]]:
    """Cross-product the axes into ``(point, spec)`` pairs.

    Every spec is fully validated; an invalid combination fails here,
    before anything runs.
    """
    from repro.analysis.sweep import grid_points

    resolved = {resolve_axis(k): list(v) for k, v in axes.items()}
    return [
        (point, base.with_overrides(dict(point)))
        for point in grid_points(resolved)
    ]


def _matrix_point(point: dict, seed: int) -> dict:
    """Run one matrix cell (module-level: picklable for worker pools)."""
    point = dict(point)
    base = ScenarioSpec.from_dict(json.loads(point.pop(_SPEC_AXIS)))
    bound_method = point.pop("__bound_method__", None) or "feasible"
    overrides: dict[str, Any] = dict(point)
    overrides["scenario.seed"] = seed
    spec = base.with_overrides(overrides)
    result = ScenarioBuilder(spec).execute()
    from repro.analysis.opt import opt_bound

    bound = opt_bound(
        build_workload(spec), spec.workload.m, method=bound_method
    )
    completed = sum(
        1 for r in result.records.values() if r.completion_time is not None
    )
    return {
        "profit": result.total_profit,
        "bound": bound,
        "fraction": result.total_profit / bound if bound > 0 else 1.0,
        "completed": completed,
        "shed": result.num_shed,
        "end_time": result.end_time,
        "fingerprint": result.fingerprint(),
    }


@dataclass
class MatrixCell:
    """One grid point's replicated outcomes."""

    #: axis name -> value (shorthand keys, as the user wrote them)
    point: dict[str, Any]
    #: per-seed cell outputs, in seed order
    values: list[dict]

    @property
    def profit(self) -> Aggregate:
        return Aggregate.of([v["profit"] for v in self.values])

    @property
    def fraction_of_bound(self) -> Aggregate:
        return Aggregate.of([v["fraction"] for v in self.values])


@dataclass
class MatrixResult:
    """A finished matrix run: the expanded table plus its inputs."""

    base: ScenarioSpec
    axes: dict[str, list]
    seeds: list[int]
    cells: list[MatrixCell]
    extra: dict = field(default_factory=dict)

    def headers(self) -> list[str]:
        """Column names: one per axis, then the aggregate metrics."""
        return list(self.axes) + [
            "profit",
            "frac_of_bound",
            "completed",
            "shed",
        ]

    def rows(self) -> list[list[Any]]:
        """One seed-averaged row per cell, in expansion order."""
        rows = []
        for cell in self.cells:
            profit = cell.profit
            fraction = cell.fraction_of_bound
            completed = Aggregate.of(
                [v["completed"] for v in cell.values]
            ).mean
            shed = Aggregate.of([v["shed"] for v in cell.values]).mean
            rows.append(
                [cell.point[axis] for axis in self.axes]
                + [
                    round(profit.mean, 4),
                    round(fraction.mean, 4),
                    round(completed, 1),
                    round(shed, 1),
                ]
            )
        return rows

    def to_text(self) -> str:
        """Aligned comparison table."""
        headers = [str(h) for h in self.headers()]
        rows = [[str(v) for v in row] for row in self.rows()]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(
                "  ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """The comparison table as a GitHub-flavored markdown table."""
        headers = [str(h) for h in self.headers()]
        lines = [
            "| " + " | ".join(headers) + " |",
            "| " + " | ".join("---" for _ in headers) + " |",
        ]
        for row in self.rows():
            lines.append("| " + " | ".join(str(v) for v in row) + " |")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible dump (the CLI's ``-o`` artifact)."""
        return {
            "base": self.base.to_dict(),
            "axes": self.axes,
            "seeds": self.seeds,
            "cells": [
                {"point": cell.point, "values": cell.values}
                for cell in self.cells
            ],
        }


def run_matrix(
    base: ScenarioSpec,
    axes: Mapping[str, Sequence[Any]],
    seeds: Sequence[int] = (0,),
    workers: Optional[int] = None,
    bound_method: str = "feasible",
) -> MatrixResult:
    """Expand and run the matrix through the parallel sweep runner.

    ``workers`` defers to :func:`repro.analysis.sweep.resolve_workers`
    (the ``REPRO_SWEEP_WORKERS`` environment variable, else serial);
    results are identical for any worker count.
    """
    from repro.analysis.sweep import sweep_values

    # validate the expansion up front (cheap, fails fast) ...
    expand_matrix(base, axes)
    # ... then route the flat grid through the sweep runner
    resolved = {resolve_axis(k): list(v) for k, v in axes.items()}
    grid = dict(resolved)
    grid[_SPEC_AXIS] = [
        json.dumps(base.to_dict(), sort_keys=True, separators=(",", ":"))
    ]
    if bound_method != "feasible":
        grid["__bound_method__"] = [bound_method]
    raw = sweep_values(_matrix_point, grid, list(seeds), workers=workers)
    shorthand_keys = list(axes)
    resolved_keys = [resolve_axis(k) for k in axes]
    cells = []
    for point, values in raw:
        display = {
            short: point[path]
            for short, path in zip(shorthand_keys, resolved_keys)
        }
        cells.append(MatrixCell(point=display, values=values))
    return MatrixResult(
        base=base,
        axes={k: list(v) for k, v in axes.items()},
        seeds=list(seeds),
        cells=cells,
    )
