"""``repro-scenario``: run, validate, list and matrix-expand scenario specs.

Subcommands:

``run SPEC``
    Build and execute one scenario, print its summary and result
    fingerprint.  ``--set section.key=value`` applies dotted overrides
    before running; ``--dump-scenario`` prints the canonical TOML
    (post-override) instead of running.

``validate SPEC...``
    Parse + validate specs without running anything.  Exit 0 iff all
    are valid; errors name the offending file, key and the nearest
    registered component.

``list [--kind KIND]``
    Print the component catalog (what names a spec may use).

``matrix SPEC --axis scheduler=sns,edf --axis shards=1,4``
    Cross-product the axes over the base spec, run every cell through
    the parallel sweep runner, and print one comparison table with
    OPT-bound fractions.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.errors import ScenarioError
from repro.scenarios.registry import REGISTRY


def parse_value(text: str) -> Any:
    """Parse a CLI value: int, float, bool, else string."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def parse_sets(pairs: Sequence[str]) -> dict[str, Any]:
    """Parse ``--set section.key=value`` pairs into an override dict."""
    overrides: dict[str, Any] = {}
    for pair in pairs:
        path, sep, value = pair.partition("=")
        if not sep or not path:
            raise ScenarioError(
                f"--set expects section.key=value, got {pair!r}",
                location=pair,
            )
        overrides[path.strip()] = parse_value(value)
    return overrides


def parse_axis(text: str) -> tuple[str, list[Any]]:
    """Parse ``--axis name=v1,v2,...`` into ``(name, values)``."""
    name, sep, values = text.partition("=")
    if not sep or not name or not values:
        raise ScenarioError(
            f"--axis expects name=value[,value...], got {text!r}",
            location=text,
        )
    return name.strip(), [parse_value(v) for v in values.split(",")]


def _load(path: str, overrides: dict[str, Any]):
    from repro.scenarios.spec import load_spec

    spec = load_spec(path)
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    from repro.scenarios.builder import ScenarioBuilder

    spec = _load(args.spec, parse_sets(args.set))
    if args.dump_scenario:
        sys.stdout.write(spec.to_toml())
        return 0
    result = ScenarioBuilder(spec).execute()
    summary = result.summary()
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(summary, fh, indent=2, default=str)
            fh.write("\n")
    print(f"scenario          {spec.name} [{spec.mode}] seed={spec.seed}")
    print(f"spec fingerprint  {spec.fingerprint()}")
    for key in ("total_profit", "jobs", "completed", "expired", "shed", "end_time"):
        if key in summary:
            print(f"{key:<17} {summary[key]}")
    for key, value in sorted(result.extra.items()):
        if isinstance(value, (int, float, str)):
            print(f"{key:<17} {value}")
    print(f"result fingerprint {result.fingerprint()}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.scenarios.spec import load_spec

    failures = 0
    for path in args.specs:
        try:
            spec = load_spec(path)
        except ScenarioError as exc:
            failures += 1
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            continue
        print(f"{path}: ok ({spec.name} [{spec.mode}] {spec.fingerprint()[:12]})")
    return 2 if failures else 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.scenarios.components import install_default_components

    install_default_components()
    if args.kind and args.kind not in REGISTRY.kinds():
        import difflib

        raise ScenarioError(
            f"unknown component kind {args.kind!r}; "
            f"known kinds: {REGISTRY.kinds()}",
            location=args.kind,
            suggestions=difflib.get_close_matches(
                args.kind, REGISTRY.kinds(), n=3, cutoff=0.4
            ),
        )
    for kind in [args.kind] if args.kind else REGISTRY.kinds():
        print(f"{kind}:")
        for name in REGISTRY.names(kind):
            component = REGISTRY.get(kind, name)
            summary = f"  {component.summary}" if component.summary else ""
            print(f"  {name:<24}{summary}".rstrip())
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.scenarios.matrix import run_matrix

    spec = _load(args.spec, parse_sets(args.set))
    axes = dict(parse_axis(a) for a in args.axis)
    if not axes:
        raise ScenarioError("matrix needs at least one --axis name=v1,v2")
    seeds = [int(s) for s in args.seeds.split(",")] if args.seeds else [0]
    result = run_matrix(
        spec,
        axes,
        seeds=seeds,
        workers=args.workers,
        bound_method=args.bound,
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, default=str)
            fh.write("\n")
    if args.format == "markdown":
        print(result.to_markdown())
    elif args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, default=str))
    else:
        print(result.to_text())
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The ``repro-scenario`` argument parser (run/validate/list/matrix)."""
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description="Declarative scenario runner for the SNS reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario spec")
    run.add_argument("spec", help="path to a .toml or .json scenario spec")
    run.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="SECTION.KEY=VALUE",
        help="override a spec value (repeatable)",
    )
    run.add_argument(
        "--dump-scenario",
        action="store_true",
        help="print the canonical TOML (post-overrides) instead of running",
    )
    run.add_argument("-o", "--output", help="write the result summary JSON here")
    run.set_defaults(fn=_cmd_run)

    validate = sub.add_parser("validate", help="validate spec files")
    validate.add_argument("specs", nargs="+", help="spec files to check")
    validate.set_defaults(fn=_cmd_validate)

    lst = sub.add_parser("list", help="print the component catalog")
    lst.add_argument("--kind", help="only this component kind")
    lst.set_defaults(fn=_cmd_list)

    matrix = sub.add_parser(
        "matrix", help="run a cross-product of axis overrides"
    )
    matrix.add_argument("spec", help="base scenario spec")
    matrix.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="axis to expand (shorthand or dotted path; repeatable)",
    )
    matrix.add_argument(
        "--seeds", default="0", help="comma-separated seeds (default 0)"
    )
    matrix.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep workers (default: REPRO_SWEEP_WORKERS, else serial)",
    )
    matrix.add_argument(
        "--bound",
        default="feasible",
        choices=["feasible", "lp", "milp"],
        help="OPT bound method for frac_of_bound (default feasible)",
    )
    matrix.add_argument(
        "--format",
        default="text",
        choices=["text", "markdown", "json"],
        help="table output format",
    )
    matrix.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="SECTION.KEY=VALUE",
        help="base-spec override applied before expansion (repeatable)",
    )
    matrix.add_argument("-o", "--output", help="write the full matrix JSON here")
    matrix.set_defaults(fn=_cmd_matrix)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; scenario errors exit 2 with a did-you-mean hint."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        if exc.suggestions:
            print(
                f"did you mean: {', '.join(exc.suggestions)}?",
                file=sys.stderr,
            )
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
