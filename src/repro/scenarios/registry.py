"""Component registry: every pluggable piece of the stack, by name.

The scenario subsystem treats schedulers, engine backends, routers,
shed policies, arrival processes, DAG families, profit samplers, fault
schedules, autoscalers, clocks and sinks uniformly as *components*: a
``(kind, name)`` pair mapping to a factory.  A
:class:`ComponentRegistry` holds them; the module-level
:data:`REGISTRY` is the shared instance every CLI and the
:class:`~repro.scenarios.spec.ScenarioSpec` validator consult.

Components are registered either with the :func:`register` decorator::

    @register("scheduler", "my-policy", summary="demo policy")
    class MyPolicy: ...

or imperatively (how the shims in
:mod:`repro.scenarios.components` adopt the pre-existing registries)::

    REGISTRY.register("router", "least-loaded", LeastLoadedRouter)

Duplicate registration is an error (:class:`~repro.errors.ScenarioError`)
unless ``replace=True`` is passed -- silent overwrites are how two
subsystems end up disagreeing about what a name means.  Unknown-name
lookups raise a :class:`~repro.errors.ScenarioError` that names the
nearest registered components, so a typo in a spec or CLI flag comes
back as ``did you mean 'least-loaded'?`` instead of a bare KeyError.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import ScenarioError


@dataclass(frozen=True)
class Component:
    """One registered component: its factory plus catalog metadata."""

    kind: str
    name: str
    factory: Callable[..., Any]
    #: one-line catalog description (defaults to the factory's docstring)
    summary: str = ""
    #: free-form metadata (e.g. ``{"accepts_epsilon": True}``)
    meta: dict = field(default_factory=dict)

    def create(self, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component."""
        return self.factory(*args, **kwargs)


def _first_doc_line(obj: Any) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    return doc.strip().split("\n")[0].strip()


class ComponentRegistry:
    """Named components bucketed by kind, with typo-tolerant lookup."""

    def __init__(self) -> None:
        self._kinds: dict[str, dict[str, Component]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        kind: str,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        summary: Optional[str] = None,
        replace: bool = False,
        **meta: Any,
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``(kind, name)``.

        Without ``factory`` this returns a decorator, so both the
        imperative and the ``@register(...)`` forms work.  Registering
        a name twice raises :class:`~repro.errors.ScenarioError` unless
        ``replace=True``: a duplicate is almost always two modules
        fighting over the same name, and the loser's users deserve a
        loud failure rather than whichever import ran last.
        """

        def _do_register(fn: Callable[..., Any]) -> Callable[..., Any]:
            bucket = self._kinds.setdefault(kind, {})
            if name in bucket and not replace:
                existing = bucket[name].factory
                raise ScenarioError(
                    f"duplicate registration of {kind} component {name!r}: "
                    f"already provided by {getattr(existing, '__module__', '?')}."
                    f"{getattr(existing, '__qualname__', repr(existing))} "
                    f"(pass replace=True to override deliberately)",
                    location=f"{kind}.{name}",
                )
            bucket[name] = Component(
                kind=kind,
                name=name,
                factory=fn,
                summary=summary if summary is not None else _first_doc_line(fn),
                meta=dict(meta),
            )
            return fn

        if factory is None:
            return _do_register
        return _do_register(factory)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def kinds(self) -> list[str]:
        """Every kind with at least one component, sorted."""
        return sorted(k for k, bucket in self._kinds.items() if bucket)

    def names(self, kind: str) -> list[str]:
        """Registered names of one kind, sorted ('' when kind unknown)."""
        return sorted(self._kinds.get(kind, {}))

    def has(self, kind: str, name: str) -> bool:
        """Whether ``(kind, name)`` is registered."""
        return name in self._kinds.get(kind, {})

    def suggest(self, kind: str, name: str, n: int = 3) -> list[str]:
        """Nearest registered names of ``kind`` to a (misspelt) ``name``."""
        return difflib.get_close_matches(
            name, self.names(kind), n=n, cutoff=0.4
        )

    def get(self, kind: str, name: str) -> Component:
        """Look up a component; unknown names raise with suggestions."""
        bucket = self._kinds.get(kind)
        if bucket is None or not bucket:
            raise ScenarioError(
                f"unknown component kind {kind!r}; "
                f"known kinds: {self.kinds()}",
                location=kind,
                suggestions=difflib.get_close_matches(
                    kind, self.kinds(), n=3, cutoff=0.4
                ),
            )
        try:
            return bucket[name]
        except KeyError:
            suggestions = self.suggest(kind, name)
            hint = (
                f"; did you mean {suggestions[0]!r}?" if suggestions else ""
            )
            raise ScenarioError(
                f"unknown {kind} {name!r}{hint} "
                f"valid {kind} names: {self.names(kind)}",
                location=f"{kind}.{name}",
                suggestions=suggestions,
            ) from None

    def create(self, kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate ``(kind, name)`` with the given arguments."""
        return self.get(kind, name).create(*args, **kwargs)

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def catalog(self) -> list[Component]:
        """Every component, sorted by (kind, name) -- the docs table."""
        return [
            bucket[name]
            for kind in self.kinds()
            for name in self.names(kind)
            for bucket in [self._kinds[kind]]
        ]

    def __iter__(self) -> Iterator[Component]:
        return iter(self.catalog())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._kinds.values())


#: The process-wide registry every CLI and spec validator share.
REGISTRY = ComponentRegistry()


def register(
    kind: str,
    name: str,
    factory: Optional[Callable[..., Any]] = None,
    **kwargs: Any,
) -> Callable[..., Any]:
    """Register on the shared :data:`REGISTRY` (decorator-friendly)."""
    return REGISTRY.register(kind, name, factory, **kwargs)
