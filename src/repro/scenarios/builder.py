"""Scenario builder: spec -> runnable -> uniform result.

:class:`ScenarioBuilder` walks the lifecycle ``setup -> run -> collect
-> teardown`` and hides which of the four run shapes is underneath:

* ``batch`` -- a bare engine (:class:`~repro.sim.engine.Simulator` or
  the frozen legacy oracle) over the materialized workload.
* ``service`` -- a :class:`~repro.service.service.SchedulingService`
  with admission control, driven in arrival order.
* ``cluster`` -- a :class:`~repro.cluster.service.ClusterService` (or
  the resilient variant when supervision/chaos is on), in-process or
  worker-process shards, optionally coordinated.
* ``gateway`` -- a paced :class:`~repro.gateway.gateway.Gateway` over
  an :class:`~repro.cluster.elastic.ElasticCluster` under a wall or
  virtual clock.

Construction mirrors the flag-driven CLIs *exactly* -- same component
factories, same defaulting, same submission order -- which is what
makes a spec-driven run bit-identical to the equivalent ``repro-serve``
/ ``repro-gateway`` invocation (pinned by ``tests/test_scenarios.py``
and the CI identity smoke).

Every shape returns a :class:`ScenarioResult` whose
:meth:`~ScenarioResult.fingerprint` is a SHA-256 over the observable
outcome (completion records, sheds, profit bit patterns); gateway runs
delegate to :meth:`GatewayResult.fingerprint
<repro.gateway.gateway.GatewayResult.fingerprint>` so the scenario
fingerprint equals the one the gateway CLI and bench already print.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ScenarioError
from repro.scenarios.components import install_default_components
from repro.scenarios.registry import REGISTRY
from repro.scenarios.spec import ScenarioSpec


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Uniform outcome of any scenario run."""

    #: the (validated) spec that produced this run
    spec: ScenarioSpec
    #: run shape ("batch" | "service" | "cluster" | "gateway")
    mode: str
    #: per-job completion records, merged across shards
    records: dict[int, Any]
    #: profit earned by completed-on-time jobs
    total_profit: float
    #: jobs dropped before release (service/cluster shed + gateway drops)
    num_shed: int
    #: simulated end time
    end_time: int
    #: the underlying result object (SimulationResult / ServiceResult /
    #: ClusterResult / GatewayResult), for shape-specific inspection
    raw: Any = None
    #: merged telemetry registry, when the shape produces one
    metrics: Any = None
    #: recorded trace events, when tracing was enabled
    trace_events: Optional[list] = None
    extra: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """SHA-256 over everything observable about the run."""
        return result_fingerprint(self.mode, self.raw)

    def summary(self) -> dict[str, Any]:
        """Flat reporting surface (what ``repro-scenario run`` prints)."""
        completed = sum(
            1 for r in self.records.values() if r.completion_time is not None
        )
        expired = sum(1 for r in self.records.values() if r.expired)
        return {
            "scenario": self.spec.name,
            "mode": self.mode,
            "seed": self.spec.seed,
            "jobs": len(self.records),
            "completed": completed,
            "expired": expired,
            "shed": self.num_shed,
            "end_time": self.end_time,
            "total_profit": self.total_profit,
            "spec_fingerprint": self.spec.fingerprint(),
            "fingerprint": self.fingerprint(),
        }


def result_fingerprint(mode: str, raw: Any) -> str:
    """Digest a run outcome; the CLIs print the same value.

    Gateway results keep their own richer fingerprint (submission
    placement, drops, scale trajectory) so scenario runs, ``repro-
    gateway`` and ``BENCH_gateway.json`` all agree on what "the same
    run" means.
    """
    if mode == "gateway":
        return raw.fingerprint()
    records = _records_of(raw)
    shed = getattr(raw, "shed", []) or []
    payload = {
        "records": [
            (
                rec.job_id,
                rec.arrival,
                rec.deadline,
                rec.completion_time,
                repr(rec.profit),
                rec.expired,
                rec.abandoned,
            )
            for rec in (records[job_id] for job_id in sorted(records))
        ],
        "shed": [
            (rec.job_id, rec.time, rec.reason, repr(rec.profit))
            for rec in shed
        ],
        "profit": repr(_profit_of(raw)),
        "end_time": _end_time_of(raw),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _records_of(raw: Any) -> dict[int, Any]:
    if hasattr(raw, "records"):
        return raw.records
    return raw.result.records  # ServiceResult


def _profit_of(raw: Any) -> float:
    return raw.total_profit


def _end_time_of(raw: Any) -> int:
    if hasattr(raw, "end_time"):
        return raw.end_time
    return raw.result.end_time


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class ScenarioBuilder:
    """Assemble and drive one scenario through its lifecycle.

    Either call the phases explicitly (``setup() -> run() -> collect()
    -> teardown()``), or use :meth:`execute` / :func:`run_scenario`
    which chain them with teardown guaranteed.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        install_default_components()
        spec.validate()
        self.spec = spec
        #: materialized workload, set by setup()
        self.specs: Optional[list] = None
        #: the runnable (engine/service/cluster/gateway), set by setup()
        self.runnable: Any = None
        #: trace recorder when tracing is enabled
        self.tracer: Any = None
        self._raw: Any = None
        self._load: Any = None
        self._gateway_parts: Optional[dict] = None
        self._torn_down = False

    # -- lifecycle ------------------------------------------------------
    def setup(self) -> "ScenarioBuilder":
        """Materialize the workload and build the runnable."""
        spec = self.spec
        if spec.tracing.enabled:
            from repro.observability import TraceRecorder

            self.tracer = TraceRecorder()
        if spec.mode == "gateway":
            # the gateway paces the generator itself; materialize once
            self._load = _load_generator(spec)
            self.specs = self._load.specs()
        else:
            self.specs = build_workload(spec)
        build = {
            "batch": self._setup_batch,
            "service": self._setup_service,
            "cluster": self._setup_cluster,
            "gateway": self._setup_gateway,
        }[spec.mode]
        build()
        return self

    def run(self) -> Any:
        """Drive the runnable over the workload; returns the raw result."""
        if self.runnable is None:
            self.setup()
        run = {
            "batch": self._run_batch,
            "service": self._run_stream,
            "cluster": self._run_stream,
            "gateway": self._run_gateway,
        }[self.spec.mode]
        self._raw = run()
        return self._raw

    def collect(self) -> ScenarioResult:
        """Fold the raw result into a uniform :class:`ScenarioResult`."""
        if self._raw is None:
            raise ScenarioError("collect() before run(); nothing to collect")
        raw = self._raw
        mode = self.spec.mode
        num_shed = getattr(raw, "num_shed", 0)
        extra: dict[str, Any] = {}
        if mode == "gateway":
            num_shed = raw.cluster.num_shed + raw.gateway_shed
            extra["scale_events"] = raw.scale_events
            extra["generated"] = raw.generated
            extra["delivered"] = raw.delivered
            extra["ticks"] = raw.ticks
            records = raw.cluster.records
            metrics = raw.cluster.metrics
            end_time = raw.sim_end
        else:
            records = _records_of(raw)
            metrics = getattr(raw, "metrics", None)
            end_time = _end_time_of(raw)
        recoveries = getattr(raw, "recoveries", None) or getattr(
            getattr(raw, "cluster", None), "recoveries", None
        )
        if recoveries:
            extra["recoveries"] = recoveries
        return ScenarioResult(
            spec=self.spec,
            mode=mode,
            records=records,
            total_profit=raw.total_profit,
            num_shed=num_shed,
            end_time=end_time,
            raw=raw,
            metrics=metrics,
            trace_events=(
                list(self.tracer.events) if self.tracer is not None else None
            ),
            extra=extra,
        )

    def teardown(self) -> None:
        """Release resources (worker-process shards, open sinks)."""
        if self._torn_down:
            return
        self._torn_down = True
        runnable = self.runnable
        if runnable is None or self._raw is not None:
            return
        # a run that never finished may hold worker-process shards;
        # finish() is the reap path and is safe on started clusters
        if getattr(runnable, "shards", None) and getattr(
            runnable, "_started", False
        ):
            try:
                runnable.finish()
            except Exception:
                pass

    def execute(self) -> ScenarioResult:
        """setup -> run -> collect, with teardown guaranteed."""
        try:
            self.setup()
            self.run()
            return self.collect()
        finally:
            self.teardown()

    # -- per-mode construction (mirrors the CLIs) -----------------------
    def _scheduler_kwargs(self) -> dict:
        """The CLI's epsilon threading: S-family schedulers get the
        workload's epsilon unless kwargs name their own."""
        spec = self.spec
        kwargs = dict(spec.scheduler.kwargs)
        component = REGISTRY.get("scheduler", spec.scheduler.name)
        if component.meta.get("accepts_epsilon") and "epsilon" not in kwargs:
            kwargs["epsilon"] = spec.workload.epsilon
        return kwargs

    def make_scheduler(self) -> Any:
        """Fresh scheduler instance from the spec's recipe."""
        return REGISTRY.create(
            "scheduler", self.spec.scheduler.name, **self._scheduler_kwargs()
        )

    def _make_picker(self) -> Any:
        spec = self.spec
        if spec.engine.picker == "fifo":
            return None  # the engines' default; keeps construction identical
        from repro.sim.picker import make_picker

        return make_picker(spec.engine.picker, rng=self.spec.seed)

    def _setup_batch(self) -> None:
        spec = self.spec
        engine_cls = REGISTRY.get("engine", spec.engine.backend).factory
        self.runnable = engine_cls(
            m=spec.workload.m,
            scheduler=self.make_scheduler(),
            picker=self._make_picker(),
            speed=spec.engine.speed,
            horizon=spec.engine.horizon or None,
            preemption_overhead=spec.engine.preemption_overhead,
        )

    def _setup_service(self) -> None:
        from repro.service.queue import make_shed_policy
        from repro.service.replay import SubmissionLog
        from repro.service.service import SchedulingService
        from repro.service.telemetry import MetricsRegistry

        from repro.sim.backends import SERVICE_BACKENDS

        spec = self.spec
        if spec.engine.backend not in SERVICE_BACKENDS:
            valid = ", ".join(SERVICE_BACKENDS)
            raise ScenarioError(
                f"service mode needs a snapshot-capable engine ({valid});"
                f" engine.backend = {spec.engine.backend!r} has no"
                " snapshot/migration surface",
                location="engine.backend",
            )
        self.runnable = SchedulingService(
            m=spec.workload.m,
            engine=spec.engine.backend,
            scheduler=self.make_scheduler(),
            capacity=spec.service.capacity,
            shed_policy=make_shed_policy(spec.service.shed_policy),
            max_in_flight=spec.service.max_in_flight or None,
            speed=spec.engine.speed,
            picker=self._make_picker(),
            horizon=spec.engine.horizon or None,
            preemption_overhead=spec.engine.preemption_overhead,
            metrics=MetricsRegistry(keep_samples=False),
            sample_every=spec.service.sample_every or None,
            recorder=SubmissionLog(),
            tracer=self.tracer,
        )

    def _shard_config(self) -> Any:
        from repro.cluster import ShardConfig
        from repro.sim.backends import SERVICE_BACKENDS

        spec = self.spec
        if spec.engine.backend not in SERVICE_BACKENDS:
            valid = ", ".join(SERVICE_BACKENDS)
            raise ScenarioError(
                f"cluster shards need a snapshot-capable engine ({valid});"
                f" engine.backend = {spec.engine.backend!r} has no"
                " snapshot/migration surface",
                location="engine.backend",
            )
        return ShardConfig(
            m=1,  # overridden per shard by the machine partition
            scheduler=spec.scheduler.name,
            scheduler_kwargs=self._scheduler_kwargs(),
            capacity=spec.service.capacity,
            shed_policy=spec.service.shed_policy,
            max_in_flight=spec.service.max_in_flight or None,
            speed=spec.engine.speed,
            sample_every=spec.service.sample_every or None,
            engine=spec.engine.backend,
        )

    def _fault_injector(self) -> Any:
        spec = self.spec
        if spec.faults.kind == "none":
            return None
        if spec.faults.kind == "kill":
            from repro.cluster import FaultInjector

            return FaultInjector().add(
                shard=spec.faults.shard, at=spec.faults.at
            )
        from repro.resilience.chaos import ChaosInjector, ChaosSchedule

        if spec.faults.kind != "chaos":
            # a bare chaos kind ("crash", "steal-interrupt", ...) is a
            # one-event schedule at faults.shard / faults.at
            return ChaosInjector(
                ChaosSchedule.parse(
                    f"{spec.faults.kind}:{spec.faults.shard}:{spec.faults.at}"
                )
            )
        if spec.faults.chaos.startswith("seed:"):
            horizon = (
                max(sp.arrival for sp in self.specs) or 1 if self.specs else 1
            )
            schedule = ChaosSchedule.generate(
                int(spec.faults.chaos.split(":", 1)[1]),
                k=spec.cluster.shards,
                horizon=horizon,
            )
        else:
            schedule = ChaosSchedule.parse(spec.faults.chaos)
        return ChaosInjector(schedule)

    def _setup_cluster(self) -> None:
        from repro.cluster import ClusterService, QueueBalancer, coordinate

        spec = self.spec
        injector = self._fault_injector()
        resilient = spec.cluster.supervise or spec.faults.kind not in (
            "none",
            "kill",
        )
        config = self._shard_config()
        common = dict(
            m=spec.workload.m,
            k=spec.cluster.shards,
            config=config,
            router=self.spec.router_name(),
            mode=spec.cluster.mode,
            migration=QueueBalancer() if spec.cluster.migrate_every else None,
            migrate_every=spec.cluster.migrate_every,
            fault_injector=injector,
            stats_refresh=spec.cluster.stats_refresh,
            tracer=self.tracer,
        )
        if resilient:
            from repro.resilience import (
                ResilientClusterService,
                SupervisorConfig,
            )

            self.runnable = ResilientClusterService(
                checkpoint_every=spec.cluster.checkpoint_every,
                supervisor=SupervisorConfig(),
                **common,
            )
        else:
            self.runnable = ClusterService(
                checkpoint_every=(
                    spec.cluster.checkpoint_every if injector else None
                ),
                **common,
            )
        if spec.cluster.coordinate:
            coordinate(
                self.runnable,
                refresh_every=spec.cluster.coordinate_every,
                steal_batch=spec.cluster.steal_batch,
                steal_margin=spec.cluster.steal_margin,
                max_displaced=spec.cluster.max_displaced,
                max_moves_per_job=spec.cluster.max_moves_per_job,
            )

    def _setup_gateway(self) -> None:
        from repro.cluster import coordinate
        from repro.cluster.elastic import ElasticCluster
        from repro.gateway.gateway import Gateway
        from repro.gateway.kpi import KpiFeed

        spec = self.spec
        injector = self._fault_injector()
        if spec.cluster.supervise or injector is not None:
            from repro.resilience import SupervisorConfig
            from repro.resilience.elastic import SupervisedElasticCluster

            cluster = SupervisedElasticCluster(
                spec.workload.m,
                spec.gateway.shards_max,
                k_initial=spec.gateway.shards_initial or None,
                config=self._shard_config(),
                router=self.spec.router_name(),
                mode=spec.cluster.mode,
                checkpoint_every=spec.cluster.checkpoint_every,
                fault_injector=injector,
                supervisor=SupervisorConfig(),
                tracer=self.tracer,
            )
        else:
            cluster = ElasticCluster(
                m=spec.workload.m,
                k_max=spec.gateway.shards_max,
                k_initial=spec.gateway.shards_initial or None,
                config=self._shard_config(),
                router=self.spec.router_name(),
                mode=spec.cluster.mode,
                tracer=self.tracer,
            )
        if spec.cluster.coordinate:
            coordinate(cluster)
        autoscaler = None
        if spec.autoscale.enabled:
            autoscaler = REGISTRY.create(
                "autoscaler",
                "hysteresis",
                k_min=spec.autoscale.shards_min,
                k_max=spec.gateway.shards_max,
                high_water=spec.autoscale.high_water,
                up_patience=spec.autoscale.up_patience,
                down_patience=spec.autoscale.down_patience,
                cooldown=spec.autoscale.cooldown,
            )
        feed = KpiFeed()
        clock = REGISTRY.create("clock", spec.gateway.clock)
        load = self._load if self._load is not None else _load_generator(spec)
        self.runnable = Gateway(
            cluster,
            load,
            clock=clock,
            tick_seconds=spec.gateway.tick,
            steps_per_tick=spec.gateway.steps_per_tick,
            buffer_capacity=spec.gateway.buffer,
            max_dispatch_per_tick=spec.gateway.max_dispatch or None,
            autoscaler=autoscaler,
            feed=feed,
            kpi_every=spec.gateway.kpi_every,
        )
        self._gateway_parts = {"cluster": cluster, "feed": feed}

    # -- per-mode driving ----------------------------------------------
    def _run_batch(self) -> Any:
        return self.runnable.run(self.specs)

    def _run_stream(self) -> Any:
        runnable = self.runnable
        runnable.start()
        for job in self.specs:
            runnable.submit(job, t=job.arrival)
        return runnable.finish()

    def _run_gateway(self) -> Any:
        return self.runnable.run(
            max_ticks=self.spec.gateway.max_ticks or None
        )


# ----------------------------------------------------------------------
# Workload materialization
# ----------------------------------------------------------------------
def _load_generator(spec: ScenarioSpec) -> Any:
    from repro.gateway.load import LoadConfig, LoadGenerator

    w = spec.workload
    return LoadGenerator(
        LoadConfig(
            n_jobs=w.n_jobs,
            m=w.m,
            load=w.load,
            family=w.family,
            epsilon=w.epsilon,
            seed=spec.workload_seed(),
            process=w.process,
            period=w.period,
            amplitude=w.amplitude,
            spike_fraction=w.spike_fraction,
            session_alpha=w.session_alpha,
        )
    )


def build_workload(spec: ScenarioSpec) -> list:
    """Materialize the job list a scenario serves, in submission order.

    ``generated`` workloads reproduce the experiment/CLI path
    (:func:`~repro.workloads.suite.generate_workload`, sorted by
    arrival); ``open-loop`` workloads materialize the gateway's seeded
    :class:`~repro.gateway.load.LoadGenerator` stream, which already
    yields in arrival order.
    """
    kind = spec.workload_kind()
    if kind == "open-loop":
        return list(_load_generator(spec))
    from repro.workloads.suite import WorkloadConfig, generate_workload

    w = spec.workload
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=w.n_jobs,
            m=w.m,
            load=w.load,
            family=w.family,
            epsilon=w.epsilon,
            deadline_policy=w.deadline_policy,
            slack_range=(w.slack_low, w.slack_high),
            tight_factor=w.tight_factor,
            profit=w.profit,
            seed=spec.workload_seed(),
        )
    )
    specs.sort(key=lambda sp: (sp.arrival, sp.job_id))
    return specs


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Build, run and collect one scenario (teardown guaranteed)."""
    return ScenarioBuilder(spec).execute()
