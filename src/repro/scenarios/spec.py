"""Declarative scenario specs: one document describes a full run.

A :class:`ScenarioSpec` names everything the four run shapes need --
workload, engine backend, scheduler, service limits, cluster topology,
faults, gateway pacing, autoscaling, tracing -- as plain data.  Specs
load from TOML or JSON (:func:`load_spec`), validate every component
name against the shared registry (unknown names and unknown keys raise
:class:`~repro.errors.ScenarioError` carrying the nearest registered
match), serialize canonically (:meth:`ScenarioSpec.to_dict` always
materializes every field in a fixed order) and therefore fingerprint
deterministically: two specs are the same scenario iff
:meth:`ScenarioSpec.fingerprint` agrees.

TOML has no null, so optional integers use ``0 = off/unbounded`` and
optional strings use ``""`` -- the same convention as the CLI flag
defaults they mirror.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import tomllib
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.errors import ScenarioError
from repro.scenarios.components import install_default_components
from repro.scenarios.registry import REGISTRY

#: Run shapes a scenario can build.
MODES = ("batch", "service", "cluster", "gateway")


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSection:
    """The traffic: how many jobs, shaped how, arriving how."""

    #: "" = auto (open-loop for gateway mode, generated otherwise)
    kind: str = ""
    #: named workload-preset applied under explicit keys ("" = none)
    preset: str = ""
    n_jobs: int = 1000
    m: int = 8
    load: float = 2.0
    family: str = "mixed"
    epsilon: float = 1.0
    deadline_policy: str = "slack"
    slack_low: float = 1.0
    slack_high: float = 2.0
    tight_factor: float = 1.0
    profit: str = "uniform"
    #: -1 = inherit the scenario seed
    seed: int = -1
    process: str = "poisson"
    period: int = 400
    amplitude: float = 0.6
    spike_fraction: float = 0.2
    session_alpha: float = 1.5


@dataclass(frozen=True)
class EngineSection:
    """The simulation core under the run."""

    backend: str = "event"
    speed: float = 1.0
    picker: str = "fifo"
    #: 0 = no horizon
    horizon: int = 0
    preemption_overhead: float = 0.0


@dataclass(frozen=True)
class SchedulerSection:
    """Which policy decides, and its constructor kwargs."""

    name: str = "sns"
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ServiceSection:
    """Admission-control limits around the engine."""

    capacity: int = 128
    shed_policy: str = "reject-lowest-density"
    #: 0 = unbounded
    max_in_flight: int = 0
    #: 0 = sample at every decision point
    sample_every: int = 0


@dataclass(frozen=True)
class ClusterSection:
    """Sharded topology (used by cluster and gateway modes)."""

    shards: int = 1
    #: "" = mode default (consistent-hash, least-loaded for gateway,
    #: band-aware when coordinated)
    router: str = ""
    mode: str = "process"
    migrate_every: int = 0
    coordinate: bool = False
    coordinate_every: int = 64
    steal_batch: int = 64
    steal_margin: float = 3.0
    max_displaced: int = 3
    max_moves_per_job: int = 2
    checkpoint_every: int = 64
    supervise: bool = False
    stats_refresh: int = 32


@dataclass(frozen=True)
class FaultsSection:
    """Injected failures.

    ``kind`` is ``"none"``, a single ``"kill"``, a ``"chaos"``
    schedule, or any single chaos kind by name (``"crash"``,
    ``"steal-interrupt"``, ...) fired once at ``shard``/``at`` over a
    supervised cluster.
    """

    kind: str = "none"
    shard: int = 0
    at: int = 0
    #: chaos spec string ("kind:shard:at,..." or "seed:N")
    chaos: str = ""


@dataclass(frozen=True)
class GatewaySection:
    """Real-time pacing (gateway mode only)."""

    clock: str = "virtual"
    tick: float = 0.05
    steps_per_tick: int = 20
    buffer: int = 4096
    #: 0 = drain all buffered work every tick
    max_dispatch: int = 0
    #: 0 = run until the stream drains
    max_ticks: int = 0
    shards_max: int = 4
    #: 0 = start with shards_max active
    shards_initial: int = 0
    kpi_every: int = 1


@dataclass(frozen=True)
class AutoscaleSection:
    """Hysteresis autoscaler knobs (gateway mode only)."""

    enabled: bool = False
    shards_min: int = 1
    high_water: float = 2.0
    up_patience: int = 1
    down_patience: int = 60
    cooldown: int = 20


@dataclass(frozen=True)
class TracingSection:
    """Structured decision tracing."""

    enabled: bool = False
    path: str = ""


#: Section name -> dataclass, in canonical document order.
SECTIONS: dict[str, type] = {
    "workload": WorkloadSection,
    "engine": EngineSection,
    "scheduler": SchedulerSection,
    "service": ServiceSection,
    "cluster": ClusterSection,
    "faults": FaultsSection,
    "gateway": GatewaySection,
    "autoscale": AutoscaleSection,
    "tracing": TracingSection,
}

#: Keys allowed in the [scenario] header.
_HEADER_KEYS = ("name", "mode", "seed")


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: header plus the nine sections."""

    name: str = "scenario"
    mode: str = "service"
    seed: int = 0
    workload: WorkloadSection = field(default_factory=WorkloadSection)
    engine: EngineSection = field(default_factory=EngineSection)
    scheduler: SchedulerSection = field(default_factory=SchedulerSection)
    service: ServiceSection = field(default_factory=ServiceSection)
    cluster: ClusterSection = field(default_factory=ClusterSection)
    faults: FaultsSection = field(default_factory=FaultsSection)
    gateway: GatewaySection = field(default_factory=GatewaySection)
    autoscale: AutoscaleSection = field(default_factory=AutoscaleSection)
    tracing: TracingSection = field(default_factory=TracingSection)

    # -- derived values -------------------------------------------------
    def workload_seed(self) -> int:
        """The workload's effective seed (scenario seed unless overridden)."""
        return self.workload.seed if self.workload.seed >= 0 else self.seed

    def workload_kind(self) -> str:
        """Resolve the ``""`` auto workload kind for this mode."""
        if self.workload.kind:
            return self.workload.kind
        return "open-loop" if self.mode == "gateway" else "generated"

    def router_name(self) -> str:
        """Resolve the ``""`` auto router for this mode."""
        if self.cluster.router:
            return self.cluster.router
        if self.cluster.coordinate:
            return "band-aware"
        return "least-loaded" if self.mode == "gateway" else "consistent-hash"

    # -- canonical serialization ---------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical nested dict: every field materialized, fixed order."""
        doc: dict[str, Any] = {
            "scenario": {
                "name": self.name,
                "mode": self.mode,
                "seed": self.seed,
            }
        }
        for section, cls in SECTIONS.items():
            value = getattr(self, section)
            doc[section] = {
                f.name: _plain(getattr(value, f.name))
                for f in dataclasses.fields(cls)
            }
        return doc

    def to_json(self) -> str:
        """Canonical JSON (the fingerprint's input)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def to_toml(self) -> str:
        """Canonical TOML document (what ``--dump-scenario`` emits)."""
        return dumps_toml(self.to_dict())

    def fingerprint(self) -> str:
        """SHA-256 of the canonical serialization.

        Two specs describe the same scenario iff their fingerprints
        match; :meth:`ScenarioResult.fingerprint
        <repro.scenarios.builder.ScenarioResult.fingerprint>` is the
        run-output counterpart.
        """
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ScenarioSpec":
        """Build and validate a spec from a (possibly partial) dict."""
        install_default_components()
        if not isinstance(doc, dict):
            raise ScenarioError(
                f"scenario document must be a table, got {type(doc).__name__}"
            )
        known = ["scenario", *SECTIONS]
        for key in doc:
            if key not in known:
                raise ScenarioError(
                    _unknown_key_message("section", key, known),
                    location=key,
                    suggestions=_close(key, known),
                )
        header = doc.get("scenario", {})
        _check_keys("scenario", header, _HEADER_KEYS)
        fields: dict[str, Any] = {
            "name": _coerce("scenario.name", str, header.get("name", "scenario")),
            "mode": _coerce("scenario.mode", str, header.get("mode", "service")),
            "seed": _coerce("scenario.seed", int, header.get("seed", 0)),
        }
        for section, section_cls in SECTIONS.items():
            data = dict(doc.get(section, {}))
            _check_keys(
                section,
                data,
                [f.name for f in dataclasses.fields(section_cls)],
            )
            if section == "workload" and data.get("preset"):
                data = _apply_preset(data)
            kwargs = {}
            for f in dataclasses.fields(section_cls):
                if f.name not in data:
                    continue
                kwargs[f.name] = _coerce(
                    f"{section}.{f.name}", f.type, data[f.name]
                )
            fields[section] = section_cls(**kwargs)
        spec = cls(**fields)
        spec.validate()
        return spec

    def validate(self) -> None:
        """Check mode, component names and numeric sanity.

        Raises :class:`~repro.errors.ScenarioError` pointing at the
        offending location, with nearest-name suggestions for unknown
        components.
        """
        install_default_components()
        if self.mode not in MODES:
            raise ScenarioError(
                f"unknown scenario mode {self.mode!r}; valid modes: "
                f"{list(MODES)}",
                location="scenario.mode",
                suggestions=_close(self.mode, MODES),
            )
        _check_component("scheduler.name", "scheduler", self.scheduler.name)
        _check_component("engine.backend", "engine", self.engine.backend)
        _check_component("engine.picker", "picker", self.engine.picker)
        _check_component("workload.family", "dag-family", self.workload.family)
        _check_component("workload.profit", "profit", self.workload.profit)
        _check_component(
            "workload.process", "arrival-process", self.workload.process
        )
        if self.workload.preset:
            _check_component(
                "workload.preset", "workload-preset", self.workload.preset
            )
        _check_component(
            "service.shed_policy", "shed-policy", self.service.shed_policy
        )
        if self.cluster.router:
            _check_component("cluster.router", "router", self.cluster.router)
        _check_component("faults.kind", "faults", self.faults.kind)
        _check_component("gateway.clock", "clock", self.gateway.clock)
        if self.workload.kind and self.workload.kind not in (
            "generated",
            "open-loop",
        ):
            raise ScenarioError(
                f"unknown workload kind {self.workload.kind!r}; valid: "
                "['generated', 'open-loop'] (or '' = auto)",
                location="workload.kind",
                suggestions=_close(
                    self.workload.kind, ("generated", "open-loop")
                ),
            )
        if self.workload.deadline_policy not in ("slack", "tight"):
            raise ScenarioError(
                f"unknown deadline policy "
                f"{self.workload.deadline_policy!r}; valid: "
                "['slack', 'tight']",
                location="workload.deadline_policy",
            )
        if self.cluster.mode not in ("inprocess", "process"):
            raise ScenarioError(
                f"unknown cluster mode {self.cluster.mode!r}; valid: "
                "['inprocess', 'process']",
                location="cluster.mode",
            )
        if self.faults.kind == "chaos" and not self.faults.chaos:
            raise ScenarioError(
                "faults.kind = 'chaos' needs faults.chaos "
                "('kind:shard:at,...' or 'seed:N')",
                location="faults.chaos",
            )
        for location, value, least in [
            ("workload.n_jobs", self.workload.n_jobs, 1),
            ("workload.m", self.workload.m, 1),
            ("cluster.shards", self.cluster.shards, 1),
            ("gateway.shards_max", self.gateway.shards_max, 1),
            ("gateway.steps_per_tick", self.gateway.steps_per_tick, 1),
            ("gateway.kpi_every", self.gateway.kpi_every, 1),
        ]:
            if value < least:
                raise ScenarioError(
                    f"{location} must be >= {least}, got {value}",
                    location=location,
                )
        if self.workload.load <= 0:
            raise ScenarioError(
                "workload.load must be positive", location="workload.load"
            )
        if self.mode == "gateway" and self.workload_kind() != "open-loop":
            raise ScenarioError(
                "gateway mode paces open-loop traffic; set workload.kind "
                "= 'open-loop' (or leave it '' for auto)",
                location="workload.kind",
            )

    def with_overrides(
        self, overrides: dict[str, Any]
    ) -> "ScenarioSpec":
        """Copy with dotted-path overrides applied and re-validated.

        ``{"scheduler.name": "edf", "cluster.shards": 4}`` -- the
        mechanism under matrix axes and the CLI's ``--set``.

        An explicit ``workload.preset`` override re-applies the
        preset's keys *over* the current values: the canonical dict
        materializes every field, so the load-time "preset fills
        unset keys" merge would otherwise make preset overrides (and
        ``workload=`` matrix axes) silent no-ops.
        """
        doc = self.to_dict()
        for path, value in overrides.items():
            parts = path.split(".")
            if len(parts) == 1 and parts[0] in _HEADER_KEYS:
                parts = ["scenario", parts[0]]
            if parts == ["workload", "preset"] and value:
                component = REGISTRY.get("workload-preset", value)
                doc["workload"].update(component.create())
                doc["workload"]["preset"] = value
                continue
            if len(parts) == 3 and parts[:2] == ["scheduler", "kwargs"]:
                doc["scheduler"].setdefault("kwargs", {})[parts[2]] = value
                continue
            if len(parts) != 2:
                raise ScenarioError(
                    f"override path {path!r} must be section.key",
                    location=path,
                )
            section, key = parts
            if section not in doc:
                raise ScenarioError(
                    _unknown_key_message("section", section, list(doc)),
                    location=path,
                    suggestions=_close(section, list(doc)),
                )
            doc[section][key] = value
        return ScenarioSpec.from_dict(doc)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def loads_spec(text: str, format: str = "auto") -> ScenarioSpec:
    """Parse a spec from TOML or JSON text (``format`` = toml|json|auto)."""
    if format not in ("auto", "toml", "json"):
        raise ScenarioError(f"unknown spec format {format!r}")
    if format in ("auto", "json"):
        stripped = text.lstrip()
        if format == "json" or stripped.startswith("{"):
            try:
                return ScenarioSpec.from_dict(json.loads(text))
            except json.JSONDecodeError as exc:
                raise ScenarioError(f"invalid JSON spec: {exc}") from exc
    try:
        return ScenarioSpec.from_dict(tomllib.loads(text))
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError(f"invalid TOML spec: {exc}") from exc


def load_spec(path: Union[str, pathlib.Path]) -> ScenarioSpec:
    """Load a spec file; format sniffed from suffix then content."""
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario spec {path}: {exc}") from exc
    if path.suffix.lower() == ".json":
        return loads_spec(text, format="json")
    if path.suffix.lower() == ".toml":
        return loads_spec(text, format="toml")
    return loads_spec(text, format="auto")


# ----------------------------------------------------------------------
# Minimal TOML emitter (stdlib tomllib is read-only)
# ----------------------------------------------------------------------
def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr is shortest-exact, so tomllib parses back the same bits
        text = repr(value)
        return text if ("." in text or "e" in text or "n" in text) else text + ".0"
    if isinstance(value, str):
        return json.dumps(value)
    raise ScenarioError(
        f"cannot serialize {type(value).__name__} value {value!r} to TOML"
    )


def dumps_toml(doc: dict[str, Any]) -> str:
    """Serialize a (two-level, scalar-leaf) spec dict as TOML."""
    lines: list[str] = []
    for section, data in doc.items():
        subtables = {
            k: v for k, v in data.items() if isinstance(v, dict)
        }
        lines.append(f"[{section}]")
        for key, value in data.items():
            if key in subtables:
                continue
            lines.append(f"{key} = {_toml_value(value)}")
        for key, sub in subtables.items():
            if not sub:
                continue
            lines.append("")
            lines.append(f"[{section}.{key}]")
            for sub_key, sub_value in sub.items():
                lines.append(f"{sub_key} = {_toml_value(sub_value)}")
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _plain(value: Any) -> Any:
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in sorted(value.items())}
    return value


def _close(name: str, candidates) -> list[str]:
    import difflib

    return difflib.get_close_matches(name, list(candidates), n=3, cutoff=0.4)


def _unknown_key_message(what: str, key: str, known) -> str:
    suggestions = _close(key, known)
    hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
    return f"unknown {what} {key!r}{hint} valid: {sorted(known)}"


def _check_keys(section: str, data: dict, known) -> None:
    if not isinstance(data, dict):
        raise ScenarioError(
            f"[{section}] must be a table, got {type(data).__name__}",
            location=section,
        )
    for key in data:
        if key not in known:
            raise ScenarioError(
                f"[{section}] " + _unknown_key_message("key", key, known),
                location=f"{section}.{key}",
                suggestions=_close(key, known),
            )


def _check_component(location: str, kind: str, name: str) -> None:
    try:
        REGISTRY.get(kind, name)
    except ScenarioError as exc:
        raise ScenarioError(
            f"{location}: {exc}",
            location=location,
            suggestions=exc.suggestions,
        ) from None


def _apply_preset(data: dict[str, Any]) -> dict[str, Any]:
    """Merge a named workload preset under the explicit keys."""
    preset = data["preset"]
    component = None
    try:
        component = REGISTRY.get("workload-preset", preset)
    except ScenarioError as exc:
        raise ScenarioError(
            f"workload.preset: {exc}",
            location="workload.preset",
            suggestions=exc.suggestions,
        ) from None
    overrides = component.create()
    return {**overrides, **data}


_TYPE_NAMES = {"int": int, "float": float, "bool": bool, "str": str, "dict": dict}


def _coerce(location: str, annotation: Any, value: Any) -> Any:
    """Coerce a parsed scalar to the field's type, strictly.

    Ints promote to float fields; bool is never accepted as int (TOML
    and JSON both distinguish them, and ``shards = true`` is a bug).
    """
    expected = annotation if isinstance(annotation, type) else _TYPE_NAMES.get(
        str(annotation)
    )
    if expected is None:
        return value
    if expected is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if expected is int and isinstance(value, bool):
        raise ScenarioError(
            f"{location} must be an integer, got a boolean", location=location
        )
    if not isinstance(value, expected):
        raise ScenarioError(
            f"{location} must be {expected.__name__}, got "
            f"{type(value).__name__} {value!r}",
            location=location,
        )
    if expected is dict:
        return {str(k): v for k, v in value.items()}
    return value
