"""Scheduler **S** -- the paper's semi-non-clairvoyant throughput
algorithm (Section 3.1).

On arrival of job :math:`J_i` with work :math:`W_i`, span :math:`L_i`,
relative deadline :math:`D_i` and profit :math:`p_i`, the scheduler
computes once and for all:

* allotment :math:`n_i = (W_i - L_i)/(D_i/(1+2\\delta) - L_i)` --
  (approximately) the fewest dedicated processors completing the job by
  :math:`D_i/(1+2\\delta)`;
* virtual execution time :math:`x_i = (W_i - L_i)/n_i + L_i` --
  Observation 2's bound on the dedicated-processor completion time;
* density :math:`v_i = p_i/(x_i n_i)` -- profit per processor-step.

Jobs live in two density-ordered queues: **Q** (started) and **P**
(parked).  An arriving job enters Q iff it is :math:`\\delta`-good
(:math:`D_i \\ge (1+2\\delta)x_i`) and the band condition (2) holds;
otherwise it parks in P.  On every job completion, P is scanned in
density order and :math:`\\delta`-fresh jobs (:math:`d_i - t \\ge
(1+\\delta)x_i`) are promoted while condition (2) allows.  Each time
step, Q is scanned in density order and each job receives *exactly*
:math:`n_i` processors if that many are free (jobs are never given more
or fewer -- the algorithm is deliberately not work-conserving; see the
paper's remark and the ablations in :mod:`repro.baselines.ablations`).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.bands import DensityBands
from repro.core.theory import Constants
from repro.errors import SchedulingError
from repro.sim.jobs import JobView
from repro.sim.scheduler import SchedulerBase


@dataclass(slots=True)
class SNSJobState:
    """Per-job quantities S computes at arrival and never changes.

    Slotted: the promote scan touches several fields of every parked
    job at every completion, and slot reads skip the instance dict.
    """

    view: JobView
    #: integral allotment n_i
    allotment: int
    #: virtual execution time x_i
    x: float
    #: density v_i = p_i / (x_i n_i)
    density: float
    #: whether condition (1) (delta-goodness) held at arrival
    delta_good: bool
    #: the paper's real-valued allotment before rounding (diagnostics)
    allotment_real: float = 0.0
    #: the job's id, cached off the view (``allocate`` reads it on every
    #: engine decision; the two-hop property chain showed up in profiles)
    job_id: int = field(init=False)
    #: absolute deadline, cached off the view (the promote scan reads it
    #: for every parked job at every completion)
    deadline: Optional[int] = field(init=False)

    def __post_init__(self) -> None:
        self.job_id = self.view.job_id
        self.deadline = self.view.deadline


class _DensityQueue:
    """Jobs ordered by density descending (ties by id), O(log n) updates."""

    def __init__(self) -> None:
        # sorted ascending by (-density, job_id) == descending density
        self._keys: list[tuple[float, int]] = []
        self._states: dict[int, SNSJobState] = {}

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._states

    def add(self, state: SNSJobState) -> None:
        if state.job_id in self._states:
            raise SchedulingError(f"job {state.job_id} already queued")
        bisect.insort(self._keys, (-state.density, state.job_id))
        self._states[state.job_id] = state

    def remove(self, job_id: int) -> SNSJobState:
        state = self._states.pop(job_id)
        pos = bisect.bisect_left(self._keys, (-state.density, job_id))
        assert self._keys[pos] == (-state.density, job_id)
        del self._keys[pos]
        return state

    def get(self, job_id: int) -> Optional[SNSJobState]:
        return self._states.get(job_id)

    def by_density_desc(self) -> list[SNSJobState]:
        return [self._states[job_id] for _, job_id in self._keys]


class SNSScheduler(SchedulerBase):
    """The paper's scheduler S for jobs with deadlines and profits.

    Parameters
    ----------
    epsilon:
        Slack parameter of Theorem 2.  Constants ``delta``, ``c``, ``b``
        derive from it (see :class:`~repro.core.theory.Constants`).
    constants:
        Pass explicitly to override the derivation.

    Notes
    -----
    *Rounding.* The paper treats ``n_i`` as a real number; processors
    are integral, so we use ``ceil`` clamped to ``[1, m]``.  Under
    Theorem 2's assumption the unclamped value is below ``b^2 m``
    (Lemma 1).

    *Events.*  Jobs are admitted to Q only at arrivals and completions,
    exactly as in the paper; deadline expiries merely clean up state.
    """

    def __init__(
        self,
        epsilon: float = 1.0,
        constants: Optional[Constants] = None,
    ) -> None:
        self.constants = (
            constants if constants is not None else Constants.from_epsilon(epsilon)
        )
        self.queue_started = _DensityQueue()  # the paper's Q
        self.queue_parked = _DensityQueue()  # the paper's P
        self.bands = DensityBands()  # allotments of jobs in Q
        #: diagnostics: ids of every job ever admitted to Q (the set R)
        self.started_ids: set[int] = set()
        #: diagnostics: per-job state for every arrival (kept post-mortem)
        self.all_states: dict[int, SNSJobState] = {}
        # Memo of the last allocation: the density scan's result only
        # depends on Q's content, so it stays valid until Q changes.
        # Invalidated by _start, the removes, and restore_state.
        self._alloc_cache: Optional[dict[int, int]] = None

    # ------------------------------------------------------------------
    # State computation (arrival-time, per the paper)
    # ------------------------------------------------------------------
    def compute_state(self, job: JobView) -> SNSJobState:
        """Compute ``(n_i, x_i, v_i)`` and delta-goodness for a job.

        Work and span are divided by the machine speed: with
        augmentation ``s`` a job behaves like one whose every node is
        ``s`` times smaller, which is exactly how Corollary 1's proof
        transforms the instance.  At speed 1 this is a no-op.
        """
        rel_deadline = job.relative_deadline
        if rel_deadline is None:
            raise SchedulingError(
                "SNSScheduler requires deadline jobs; use GeneralProfitScheduler "
                "for profit-function jobs"
            )
        consts = self.constants
        work = job.work / self.speed
        span = job.span / self.speed
        # Inlined Constants.allotment_real / allotment / execution_bound
        # / density / is_delta_good -- identical expressions, evaluated
        # once instead of across five method calls (this runs for every
        # arrival and showed up in profiles at 800-job scale).
        one_plus_2delta = 1.0 + 2.0 * consts.delta
        if work <= span + 1e-12:
            real = 0.0
        else:
            denom = rel_deadline / one_plus_2delta - span
            real = (work - span) / denom if denom > 0 else math.inf
        m = self.m
        if math.isinf(real):
            n = m
        else:
            n = max(1, min(m, math.ceil(real - 1e-12)))
        x = (work - span) / n + span
        density = job.profit / (x * n)
        good = rel_deadline >= one_plus_2delta * x - 1e-9
        return SNSJobState(
            view=job,
            allotment=n,
            x=x,
            density=density,
            delta_good=good,
            allotment_real=real,
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_arrival(self, job: JobView, t: int) -> None:
        """Admit to Q if delta-good and condition (2) holds, else park."""
        state = self.compute_state(job)
        self.all_states[job.job_id] = state
        if state.density <= 0:
            # Zero-profit jobs can never contribute; park them forever.
            self.queue_parked.add(state)
            return
        if state.delta_good and self.bands.can_insert(
            state.density, state.allotment, self.constants.c, self._capacity()
        ):
            self._start(state)
        else:
            self.queue_parked.add(state)

    def on_completion(self, job: JobView, t: int) -> None:
        """Remove from Q, then promote delta-fresh parked jobs."""
        if job.job_id in self.queue_started:
            self.queue_started.remove(job.job_id)
            self.bands.remove(job.job_id)
            self._alloc_cache = None
        elif job.job_id in self.queue_parked:
            # A parked job can only complete if some other scheduler ran
            # it -- impossible under this engine; defensive cleanup.
            self.queue_parked.remove(job.job_id)
        self._promote(t)

    def on_expiry(self, job: JobView, t: int) -> None:
        """Deadline passed: drop the job from whichever queue holds it."""
        if job.job_id in self.queue_started:
            self.queue_started.remove(job.job_id)
            self.bands.remove(job.job_id)
            self._alloc_cache = None
        elif job.job_id in self.queue_parked:
            self.queue_parked.remove(job.job_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def allocate(self, t: int) -> dict[int, int]:
        """Scan Q by density (desc); give each job exactly ``n_i``
        processors while they last."""
        alloc = self._alloc_cache
        if alloc is not None:
            # Q unchanged since the last scan, so the scan's outcome is
            # too.  Callers must treat the result as read-only (see
            # WorkConservingSNS, which copies before topping up).
            return alloc
        free = self.m
        alloc = {}
        queue = self.queue_started
        states = queue._states  # same-module access: this scan runs every decision
        for _, job_id in queue._keys:
            if free <= 0:
                break
            n = states[job_id].allotment
            if n <= free:
                alloc[job_id] = n
                free -= n
        self._alloc_cache = alloc
        return alloc

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _capacity(self) -> float:
        if self.m <= 0:
            raise SchedulingError("scheduler not started (on_start not called)")
        return self.constants.band_capacity(self.m)

    def _start(self, state: SNSJobState) -> None:
        self.queue_started.add(state)
        self.bands.insert(state.job_id, state.density, state.allotment)
        self.started_ids.add(state.job_id)
        self._alloc_cache = None

    def _promote(self, t: int) -> None:
        """Move delta-fresh parked jobs into Q (paper: at completions)."""
        if not self.queue_parked._states:
            return
        capacity = self._capacity()
        consts = self.constants
        c = consts.c
        one_plus_delta = 1.0 + consts.delta
        blocking_band = self.bands.blocking_band
        # Cache of the last band that rejected a candidate.  Band loads
        # only grow within one promote pass (the pass only inserts), so
        # a later candidate whose density falls inside the cached band
        # -- making it one of the bands condition (2) checks for that
        # candidate -- and whose allotment still overfills the cached
        # (hence current) load is rejected without touching the bands.
        block_lo = block_hi = 0.0
        block_load = -1
        limit = capacity + 1e-9  # the comparison slack can_insert uses
        for state in self.queue_parked.by_density_desc():
            deadline = state.deadline
            assert deadline is not None
            if deadline <= t:
                # expired but engine notification pending; skip (engine
                # will call on_expiry at this same time step)
                continue
            density = state.density
            if density <= 0:
                # density-descending scan: every later job is also <= 0
                break
            # inlined Constants.is_delta_fresh (same expression)
            if deadline - t < one_plus_delta * state.x - 1e-9:
                continue
            allotment = state.allotment
            if (
                block_load >= 0
                and block_lo <= density < block_hi
                and block_load + allotment > limit
            ):
                continue
            block = blocking_band(density, allotment, c, capacity)
            if block is None:
                self.queue_parked.remove(state.job_id)
                self._start(state)
            else:
                block_lo, block_hi, block_load = block

    # ------------------------------------------------------------------
    # Checkpointing (see repro.service.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serialize Q, P, the band structure's contents and the set R.

        Per-job quantities (allotment, ``x``, density) are stored rather
        than recomputed so a restored scheduler makes bit-identical
        decisions even across floating-point-sensitive recomputation.
        Diagnostics for already-finished jobs (``all_states`` entries)
        are not carried across a restore.
        """
        def encode(state: SNSJobState) -> dict:
            return {
                "job_id": state.job_id,
                "allotment": state.allotment,
                "x": state.x,
                "density": state.density,
                "delta_good": state.delta_good,
                "allotment_real": state.allotment_real,
            }

        return {
            "constants": {
                "epsilon": self.constants.epsilon,
                "delta": self.constants.delta,
                "c": self.constants.c,
                "b": self.constants.b,
            },
            "started": [encode(s) for s in self.queue_started.by_density_desc()],
            "parked": [encode(s) for s in self.queue_parked.by_density_desc()],
            "started_ids": sorted(self.started_ids),
        }

    def restore_state(self, data: dict, views) -> None:
        """Rebuild queues, bands and R from :meth:`snapshot_state` output.

        ``views`` must contain a :class:`~repro.sim.jobs.JobView` for
        every job in Q or P (the engine restore provides it).  The
        scheduler must have been constructed with the same constants.
        """
        stored = data["constants"]
        mine = self.constants
        if (
            stored["epsilon"] != mine.epsilon
            or stored["delta"] != mine.delta
            or stored["c"] != mine.c
            or stored["b"] != mine.b
        ):
            raise SchedulingError(
                f"snapshot constants {stored} do not match scheduler {mine!r}"
            )

        def decode(entry: dict) -> SNSJobState:
            job_id = int(entry["job_id"])
            if job_id not in views:
                raise SchedulingError(f"no restored view for job {job_id}")
            return SNSJobState(
                view=views[job_id],
                allotment=int(entry["allotment"]),
                x=float(entry["x"]),
                density=float(entry["density"]),
                delta_good=bool(entry["delta_good"]),
                allotment_real=float(entry["allotment_real"]),
            )

        self.queue_started = _DensityQueue()
        self.queue_parked = _DensityQueue()
        self.bands = DensityBands()
        self.all_states = {}
        self._alloc_cache = None
        for entry in data["started"]:
            state = decode(entry)
            self.queue_started.add(state)
            self.bands.insert(state.job_id, state.density, state.allotment)
            self.all_states[state.job_id] = state
        for entry in data["parked"]:
            state = decode(entry)
            self.queue_parked.add(state)
            self.all_states[state.job_id] = state
        self.started_ids = {int(i) for i in data["started_ids"]}

    # ------------------------------------------------------------------
    # Introspection for tests / invariant monitors
    # ------------------------------------------------------------------
    def started_states(self) -> list[SNSJobState]:
        """States of jobs currently in Q, density-descending."""
        return self.queue_started.by_density_desc()

    def parked_states(self) -> list[SNSJobState]:
        """States of jobs currently in P, density-descending."""
        return self.queue_parked.by_density_desc()

    def starved_states(self) -> list[SNSJobState]:
        """States of Q jobs the current allotment scan leaves unserved.

        Mirrors :meth:`allocate`'s density-descending scan read-only
        (no cache is touched): condition (2) caps each *band* at
        ``b*m``, but Q's total allotment across several bands can
        exceed ``m``, so the scan's tail receives zero processors.
        Such jobs hold band capacity while earning at zero rate --
        they are the cluster coordinator's preferred steal victims.
        """
        free = self.m
        starved: list[SNSJobState] = []
        for state in self.queue_started.by_density_desc():
            if free <= 0:
                starved.append(state)
                continue
            if state.allotment <= free:
                free -= state.allotment
            else:
                starved.append(state)
        return starved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SNSScheduler(eps={self.constants.epsilon:g}, "
            f"|Q|={len(self.queue_started)}, |P|={len(self.queue_parked)})"
        )
