"""Derivation of the paper's constants and proven bounds.

From a single accuracy parameter :math:`\\epsilon > 0` the paper fixes

* :math:`\\delta < \\epsilon/2` (we default to :math:`\\epsilon/4`),
* :math:`c \\ge 1 + 1/(\\delta\\epsilon)` (band width of the admission
  condition),
* :math:`b = \\sqrt{(1+2\\delta)/(1+\\epsilon)} < 1` (band capacity
  fraction),
* :math:`a = 1 + (1+2\\delta)/(\\epsilon-2\\delta)` (processor-step
  inflation, Lemma 3),

and proves the competitive ratio of Lemma 10 (throughput) and Lemma 22
(general profit), both :math:`O(1/\\epsilon^6)`.

Deviation note (documented in EXPERIMENTS.md): with the paper's minimal
``c = 1 + 1/(\\delta\\epsilon)``, the completion-ratio coefficient of
Lemma 5, :math:`(1-b)/b - 1/((c-1)\\delta)`, evaluates to
:math:`(1-b)/b - \\epsilon`, which is *negative* for small
:math:`\\epsilon` -- the brief announcement's algebra identifies
:math:`(1-b)/b` with :math:`\\epsilon`, which does not hold exactly.
We therefore default ``c`` to the larger of the paper's value and the
value making :math:`1/((c-1)\\delta) = \\tfrac12 (1-b)/b`, so the
coefficient is a guaranteed-positive :math:`\\tfrac12 (1-b)/b`.  A larger
``c`` only widens the admission bands (more conservative admission); it
changes constants, not the algorithm's structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Constants:
    """The paper's constants, derived from ``epsilon``.

    Attributes
    ----------
    epsilon:
        Deadline-slack parameter of Theorem 2 / Theorem 3.
    delta:
        Freshness parameter, ``< epsilon/2``.
    c:
        Density band width (admission condition (2) covers
        ``[v, c*v)``).
    b:
        Band capacity fraction; condition (2) admits while band load
        ``<= b*m``.
    """

    epsilon: float
    delta: float
    c: float
    b: float

    # ------------------------------------------------------------------
    @classmethod
    def from_epsilon(
        cls,
        epsilon: float,
        delta: float | None = None,
        c: float | None = None,
    ) -> "Constants":
        """Derive all constants from ``epsilon`` (paper defaults).

        ``delta`` defaults to ``epsilon/4``; ``c`` defaults to the
        maximum of the paper's ``1 + 1/(delta*epsilon)`` and the value
        that makes Lemma 5's coefficient positive (see module note).
        """
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if delta is None:
            delta = epsilon / 4.0
        if not 0 < delta < epsilon / 2.0:
            raise ValueError("delta must satisfy 0 < delta < epsilon/2")
        b = math.sqrt((1.0 + 2.0 * delta) / (1.0 + epsilon))
        if c is None:
            c_paper = 1.0 + 1.0 / (delta * epsilon)
            ratio = (1.0 - b) / b  # Lemma 5's credit-income coefficient
            c_positive = 1.0 + 2.0 / (delta * ratio)
            c = max(c_paper, c_positive)
        if c <= 1.0 + 1.0 / (delta * epsilon) - 1e-12:
            raise ValueError("c must be >= 1 + 1/(delta*epsilon)")
        return cls(epsilon=epsilon, delta=delta, c=c, b=b)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0 < self.delta < self.epsilon / 2.0:
            raise ValueError("delta must satisfy 0 < delta < epsilon/2")
        expected_b = math.sqrt((1.0 + 2.0 * self.delta) / (1.0 + self.epsilon))
        if abs(self.b - expected_b) > 1e-9:
            raise ValueError("b must equal sqrt((1+2delta)/(1+epsilon))")
        if self.c <= 1.0:
            raise ValueError("c must exceed 1")

    # ------------------------------------------------------------------
    # Derived quantities used throughout the proofs
    # ------------------------------------------------------------------
    @property
    def a(self) -> float:
        """Lemma 3's processor-step inflation: ``x_i n_i <= a W_i``."""
        return 1.0 + (1.0 + 2.0 * self.delta) / (self.epsilon - 2.0 * self.delta)

    @property
    def credit_income(self) -> float:
        """Per-profit credit every unfinished job receives (Lemma 5):
        ``(1-b)/b``."""
        return (1.0 - self.b) / self.b

    @property
    def credit_outgo(self) -> float:
        """Per-profit credit a job pays out (Lemma 5): ``1/((c-1)delta)``."""
        return 1.0 / ((self.c - 1.0) * self.delta)

    @property
    def completion_coefficient(self) -> float:
        """Lemma 5's guarantee: ``||C|| >= coefficient * ||R||``.

        Positive by our choice of ``c`` (see module note).
        """
        return self.credit_income - self.credit_outgo

    @property
    def opt_vs_started(self) -> float:
        """Lemma 9's bound: ``||C^O|| <= opt_vs_started * ||R||``."""
        return 1.0 + self.a * self.c * (1.0 + 2.0 * self.delta) / (
            self.delta * self.b * (1.0 - self.b)
        )

    @property
    def competitive_ratio_throughput(self) -> float:
        """Lemma 10's proven competitive ratio for throughput."""
        return self.opt_vs_started / self.completion_coefficient

    @property
    def opt_vs_started_profit(self) -> float:
        """Lemma 21's bound for general profit (factor 2 vs Lemma 9)."""
        return 1.0 + self.a * self.c * 2.0 * (1.0 + 2.0 * self.delta) / (
            self.delta * self.b * (1.0 - self.b)
        )

    @property
    def competitive_ratio_profit(self) -> float:
        """Lemma 22's proven competitive ratio for general profit."""
        return self.opt_vs_started_profit / self.completion_coefficient

    # ------------------------------------------------------------------
    # Per-job quantities
    # ------------------------------------------------------------------
    def allotment_real(self, work: float, span: float, deadline: float) -> float:
        """The paper's (real-valued) allotment
        ``n_i = (W - L) / (D/(1+2delta) - L)``.

        Returns ``0`` for sequential jobs (``W == L``) and ``inf`` when
        the denominator is non-positive (the job cannot be made
        delta-good at any allotment).
        """
        denom = deadline / (1.0 + 2.0 * self.delta) - span
        if work <= span + 1e-12:
            return 0.0
        if denom <= 0:
            return math.inf
        return (work - span) / denom

    def allotment(self, work: float, span: float, deadline: float, m: int) -> int:
        """Integral allotment: ``ceil`` of the real value, clamped to
        ``[1, m]``.

        Under Theorem 2's assumption the real value is at most
        ``b^2 m < m`` (Lemma 1), so the clamp binds only outside the
        assumption (where the paper's algorithm is undefined but the
        experiments still need well-defined behaviour).
        """
        real = self.allotment_real(work, span, deadline)
        if math.isinf(real):
            return m
        return max(1, min(m, math.ceil(real - 1e-12)))

    def execution_bound(self, work: float, span: float, allotment: int) -> float:
        """``x_i = (W - L)/n_i + L`` -- Observation 2's completion bound."""
        return (work - span) / allotment + span

    def density(self, profit: float, x: float, allotment: int) -> float:
        """The paper's density ``v_i = p_i / (x_i n_i)``."""
        return profit / (x * allotment)

    def is_delta_good(self, deadline: float, x: float) -> bool:
        """Condition (1): ``D_i >= (1 + 2delta) x_i``."""
        return deadline >= (1.0 + 2.0 * self.delta) * x - 1e-9

    def is_delta_fresh(self, abs_deadline: float, t: float, x: float) -> bool:
        """Freshness at time ``t``: ``d_i - t >= (1 + delta) x_i``."""
        return abs_deadline - t >= (1.0 + self.delta) * x - 1e-9

    def band_capacity(self, m: int) -> float:
        """Condition (2)'s capacity ``b * m``."""
        return self.b * m

    def allotment_cap(self, m: int) -> float:
        """Lemma 1's bound ``b^2 m`` on any allotment (real-valued)."""
        return self.b * self.b * m

    def slack_requirement(self, work: float, span: float, m: int) -> float:
        """Theorem 2's minimum relative deadline
        ``(1+epsilon)((W-L)/m + L)``."""
        return (1.0 + self.epsilon) * ((work - span) / m + span)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Constants(eps={self.epsilon:g}, delta={self.delta:g}, "
            f"c={self.c:.4g}, b={self.b:.4g}, a={self.a:.4g}, "
            f"ratio={self.competitive_ratio_throughput:.4g})"
        )
