"""The paper's general-profit scheduler (Section 5).

For each arriving job the scheduler *assigns* a relative deadline
:math:`D_i` (the minimum "valid" one, maximizing the non-increasing
profit :math:`p_i(D_i)`) and a set :math:`I_i` of
:math:`(1+\\delta)x_i` time slots inside :math:`[r_i, r_i + D_i)`; the
job may execute only during its slots.  A slot :math:`t` may be added
while the band condition holds against :math:`J(t)`, the set of jobs
already holding slot :math:`t` (Lemma 15's invariant).  Each time step
the scheduler runs the densest slot-holders, giving each exactly
:math:`n_i` processors.

Allotment here uses the profit function's knee :math:`x^*` instead of a
given deadline: :math:`n_i = (W_i-L_i)/(x^*/(1+2\\delta) - L_i)`, and the
density of a job assigned deadline :math:`D` is
:math:`v = p_i(D)/(x_i n_i)`.

Implementation notes (documented deviations)
--------------------------------------------
* The paper searches "all potential deadlines".  We search exactly over
  the *pieces* of the profit function where its value is constant
  (steps/staircases), which is exact; for continuously decaying
  functions we search a geometric grid of candidate deadlines and then
  re-validate the chosen deadline with its exact density, which keeps
  Lemma 15's invariant sound while bounding search cost.
* Completed/expired jobs release their unused future slots.  The paper
  leaves this unspecified; releasing only adds capacity and preserves
  the admission invariant.
* Jobs for which no valid deadline exists before their profit reaches
  zero are rejected at arrival (they could never earn anything).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.bands import DensityBands
from repro.core.theory import Constants
from repro.errors import SchedulingError
from repro.profit.functions import ProfitFunction, Staircase, StepProfit
from repro.sim.jobs import JobView
from repro.sim.scheduler import SchedulerBase


@dataclass
class ProfitJobState:
    """Per-job assignment the scheduler fixes at arrival."""

    view: JobView
    allotment: int
    x: float
    #: slots required: ceil((1+delta) * x)
    required_slots: int
    #: assigned relative deadline (None = rejected)
    assigned_relative_deadline: Optional[int] = None
    #: density at the assigned deadline
    density: float = 0.0
    #: assigned slots, ascending
    slots: list[int] = field(default_factory=list)
    rejected: bool = False

    @property
    def job_id(self) -> int:
        """The job's id."""
        return self.view.job_id


class GeneralProfitScheduler(SchedulerBase):
    """Scheduler S for jobs with general non-increasing profit functions.

    Parameters
    ----------
    epsilon:
        Accuracy parameter of Theorem 3.
    constants:
        Override the constant derivation.
    grid_ratio:
        Geometric spacing of candidate deadlines for continuously
        decaying profit functions (exact breakpoints are always used
        for piecewise-constant ones).
    """

    def __init__(
        self,
        epsilon: float = 1.0,
        constants: Optional[Constants] = None,
        grid_ratio: float = 1.05,
    ) -> None:
        self.constants = (
            constants if constants is not None else Constants.from_epsilon(epsilon)
        )
        if grid_ratio <= 1.0:
            raise ValueError("grid_ratio must exceed 1")
        self.grid_ratio = float(grid_ratio)
        #: per-slot occupancy: t -> bands of jobs holding slot t
        self._slots: dict[int, DensityBands] = {}
        self._slot_times: list[int] = []  # heap for garbage collection
        self._max_slot: int = -1
        self.states: dict[int, ProfitJobState] = {}
        self._live: set[int] = set()

    # ------------------------------------------------------------------
    # Arrival: deadline + slot assignment
    # ------------------------------------------------------------------
    def on_arrival(self, job: JobView, t: int) -> None:
        """Compute the assignment; the deadline itself is returned to the
        engine from :meth:`assign_deadline`."""
        state = self._assign(job, t)
        self.states[job.job_id] = state
        if not state.rejected:
            self._live.add(job.job_id)

    def assign_deadline(self, job: JobView, t: int) -> Optional[int]:
        """Absolute deadline for the engine's expiry machinery."""
        state = self.states[job.job_id]
        if state.rejected:
            # Expire immediately; the job can never earn profit.
            return t + 1
        assert state.assigned_relative_deadline is not None
        return job.arrival + state.assigned_relative_deadline

    def _profit_fn(self, job: JobView) -> ProfitFunction:
        if job.profit_fn is not None:
            return job.profit_fn
        # Deadline jobs are the step-profit special case.
        rel = job.relative_deadline
        assert rel is not None
        return StepProfit(peak=job.profit, x_star=float(rel))

    def _assign(self, job: JobView, now: int) -> ProfitJobState:
        consts = self.constants
        fn = self._profit_fn(job)
        # Speed-scaled work/span, as in Corollary 3's transformation.
        work, span = job.work / self.speed, job.span / self.speed
        # Allotment from the knee x*: n = (W-L) / (x*/(1+2delta) - L).
        denom = fn.x_star / (1.0 + 2.0 * consts.delta) - span
        if work <= span + 1e-12:
            n = 1
        elif denom <= 0:
            n = self.m
        else:
            n = max(1, min(self.m, math.ceil((work - span) / denom - 1e-12)))
        x = consts.execution_bound(work, span, n)
        required = math.ceil((1.0 + consts.delta) * x - 1e-9)
        state = ProfitJobState(view=job, allotment=n, x=x, required_slots=required)

        if fn.peak <= 0 or n > consts.band_capacity(self.m) + 1e-9:
            # A job whose allotment alone overflows a band can never hold
            # a slot (only possible outside Theorem 3's assumption).
            state.rejected = True
            return state

        found = self._search_deadline(state, fn, now)
        if found is None:
            state.rejected = True
            return state
        rel_deadline, density, slots = found
        state.assigned_relative_deadline = rel_deadline
        state.density = density
        state.slots = slots
        self._claim_slots(state)
        return state

    # -- deadline search -------------------------------------------------
    def _search_deadline(
        self, state: ProfitJobState, fn: ProfitFunction, now: int
    ) -> Optional[tuple[int, float, list[int]]]:
        """Find the minimum valid relative deadline.

        Returns ``(D, density, slots)`` or ``None`` when no deadline with
        positive profit admits enough slots.
        """
        consts = self.constants
        job = state.view
        r = job.arrival
        xn = state.x * state.allotment
        # Potential deadlines must exceed (1+eps)L (paper requirement)
        # and leave room for the required number of slots after `now`
        # (slots in the past are useless).
        d_floor = max(
            math.floor((1.0 + consts.epsilon) * job.span) + 1,
            state.required_slots,
            now - r + 1,
        )
        # Beyond the last currently-claimed slot everything is free, so
        # no minimal deadline exceeds that point by more than the
        # required slot count (plus the positive-profit horizon).
        d_cap = max(self._max_slot + 1 - r, d_floor) + state.required_slots + 1
        pos_horizon = fn.horizon(0.0)
        if math.isfinite(pos_horizon):
            d_cap = min(d_cap, math.ceil(pos_horizon))
        if d_cap < d_floor:
            return None

        for d_lo, d_hi in self._candidate_pieces(fn, d_floor, d_cap):
            nominal_density = fn(d_lo) / xn
            if nominal_density <= 0:
                break  # profit is zero from here on; later pieces too
            candidate = self._earliest_valid_in_piece(
                state, r, now, d_lo, d_hi, nominal_density
            )
            if candidate is None:
                continue
            # Re-validate with the exact density at the candidate (the
            # nominal density may differ for continuous decays).
            exact_density = fn(candidate) / xn
            if exact_density <= 0:
                continue
            slots = self._admissible_slots(
                state, max(r, now), r + candidate, exact_density
            )
            if len(slots) >= state.required_slots:
                return candidate, exact_density, slots[: state.required_slots]
        return None

    def _candidate_pieces(
        self, fn: ProfitFunction, d_floor: int, d_cap: int
    ):
        """Yield ``(d_lo, d_hi)`` integer deadline ranges of (near-)
        constant profit, ascending."""
        breakpoints: list[int]
        if isinstance(fn, StepProfit):
            breakpoints = [d_floor, math.floor(fn.x_star) + 1]
        elif isinstance(fn, Staircase):
            breakpoints = [d_floor] + [math.floor(bt) + 1 for bt, _ in fn.levels]
        else:
            # geometric grid for continuous decays; dense before the
            # knee is pointless (flat), so start pieces at x_star
            breakpoints = [d_floor]
            knee = max(d_floor, math.floor(fn.x_star) + 1)
            if knee > d_floor:
                breakpoints.append(knee)
            d = float(knee)
            while d < d_cap:
                d *= self.grid_ratio
                breakpoints.append(math.ceil(d))
        breakpoints = sorted({b for b in breakpoints if d_floor <= b <= d_cap})
        if not breakpoints or breakpoints[0] != d_floor:
            breakpoints.insert(0, d_floor)
        breakpoints.append(d_cap + 1)
        for lo, hi in zip(breakpoints, breakpoints[1:]):
            if hi > lo:
                yield lo, hi - 1

    def _earliest_valid_in_piece(
        self,
        state: ProfitJobState,
        r: int,
        now: int,
        d_lo: int,
        d_hi: int,
        density: float,
    ) -> Optional[int]:
        """Smallest D in [d_lo, d_hi] such that >= required_slots slots in
        [max(r, now), r + D) admit (fixed density)."""
        start = max(r, now)
        end = r + d_hi
        count = 0
        for t in range(start, end):
            if self._slot_admits(t, density, state.allotment):
                count += 1
                if count >= state.required_slots:
                    return max(d_lo, t - r + 1)
        return None

    def _admissible_slots(
        self, state: ProfitJobState, start: int, end: int, density: float
    ) -> list[int]:
        return [
            t
            for t in range(start, end)
            if self._slot_admits(t, density, state.allotment)
        ]

    def _slot_admits(self, t: int, density: float, allotment: int) -> bool:
        bands = self._slots.get(t)
        capacity = self.constants.band_capacity(self.m)
        if bands is None:
            return allotment <= capacity + 1e-9
        return bands.can_insert(density, allotment, self.constants.c, capacity)

    def _claim_slots(self, state: ProfitJobState) -> None:
        for t in state.slots:
            bands = self._slots.get(t)
            if bands is None:
                bands = DensityBands()
                self._slots[t] = bands
                heapq.heappush(self._slot_times, t)
            bands.insert(state.job_id, state.density, state.allotment)
            if t > self._max_slot:
                self._max_slot = t

    def _release_slots(self, job_id: int, from_time: int) -> None:
        state = self.states.get(job_id)
        if state is None:
            return
        for t in state.slots:
            if t < from_time:
                continue
            bands = self._slots.get(t)
            if bands is not None and job_id in bands:
                bands.remove(job_id)

    # ------------------------------------------------------------------
    # Events / execution
    # ------------------------------------------------------------------
    def on_completion(self, job: JobView, t: int) -> None:
        """Release the job's unused future slots."""
        self._live.discard(job.job_id)
        self._release_slots(job.job_id, t)

    def on_expiry(self, job: JobView, t: int) -> None:
        """Assigned deadline passed unfinished; release remaining slots."""
        self._live.discard(job.job_id)
        self._release_slots(job.job_id, t)

    def allocate(self, t: int) -> dict[int, int]:
        """Run the densest jobs holding slot ``t``, each at exactly
        ``n_i`` processors."""
        self._gc(t)
        bands = self._slots.get(t)
        if bands is None:
            return {}
        free = self.m
        alloc: dict[int, int] = {}
        for job_id, _v, n in reversed(list(bands.items())):
            if free <= 0:
                break
            if job_id not in self._live:
                continue
            if n <= free:
                alloc[job_id] = n
                free -= n
        return alloc

    def wakeup_after(self, t: int) -> Optional[int]:
        """Slot membership can change every step while slots remain."""
        if self._max_slot > t:
            return t + 1
        return None

    def _gc(self, t: int) -> None:
        while self._slot_times and self._slot_times[0] < t:
            old = heapq.heappop(self._slot_times)
            self._slots.pop(old, None)

    # ------------------------------------------------------------------
    def slot_occupancy(self, t: int) -> Optional[DensityBands]:
        """The J(t) bands (diagnostics / invariant checks)."""
        return self._slots.get(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GeneralProfitScheduler(eps={self.constants.epsilon:g}, "
            f"live={len(self._live)}, slots={len(self._slots)})"
        )
