"""Density-band occupancy structure for the admission condition.

Condition (2) of the paper's scheduler admits a job :math:`J_i` only if,
for every job :math:`J_j` in the started set (including :math:`J_i`),
the total allotment of jobs with density in :math:`[v_j, c\\,v_j)` stays
at most :math:`b\\,m`.  :class:`DensityBands` maintains the multiset of
``(density, allotment)`` pairs and answers

* :meth:`band_load` -- the paper's :math:`N(T, v_1, v_2)`;
* :meth:`can_insert` -- the full condition (2) check, using the
  observation (also used in the paper's Lemma 18) that inserting a job
  of density :math:`v` only perturbs bands anchored at densities
  :math:`v_j \\in (v/c, v]`.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator


class DensityBands:
    """Multiset of (density, allotment) pairs with band-load queries.

    Densities are kept in a sorted list; loads are computed over slices.
    Sizes in this problem are modest (the started set never exceeds a
    few hundred jobs), so O(band width) per query is the right
    simplicity/performance trade-off -- profile before replacing with a
    Fenwick tree.
    """

    def __init__(self) -> None:
        self._densities: list[float] = []  # sorted ascending
        self._allotments: list[int] = []  # parallel to _densities
        self._keys: list[tuple[float, int]] = []  # (density, job_id), sorted
        self._jobs: dict[int, tuple[float, int]] = {}  # job_id -> (v, n)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def density_of(self, job_id: int) -> float:
        """Density of a tracked job."""
        return self._jobs[job_id][0]

    def allotment_of(self, job_id: int) -> int:
        """Allotment of a tracked job."""
        return self._jobs[job_id][1]

    def items(self) -> Iterator[tuple[int, float, int]]:
        """Iterate ``(job_id, density, allotment)`` in density order."""
        for v, job_id in self._keys:
            yield job_id, v, self._jobs[job_id][1]

    # ------------------------------------------------------------------
    def insert(self, job_id: int, density: float, allotment: int) -> None:
        """Track a job (no admission check -- see :meth:`can_insert`)."""
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} already tracked")
        if density <= 0 or not math.isfinite(density):
            raise ValueError("density must be positive and finite")
        if allotment < 1:
            raise ValueError("allotment must be >= 1")
        key = (density, job_id)
        pos = bisect.bisect_left(self._keys, key)
        self._keys.insert(pos, key)
        self._densities.insert(pos, density)
        self._allotments.insert(pos, allotment)
        self._jobs[job_id] = (density, allotment)

    def remove(self, job_id: int) -> None:
        """Stop tracking a job."""
        density, _ = self._jobs.pop(job_id)
        pos = bisect.bisect_left(self._keys, (density, job_id))
        assert self._keys[pos] == (density, job_id)
        del self._keys[pos]
        del self._densities[pos]
        del self._allotments[pos]

    # ------------------------------------------------------------------
    def band_load(self, v_lo: float, v_hi: float) -> int:
        """Total allotment of jobs with density in ``[v_lo, v_hi)`` --
        the paper's :math:`N(T, v_1, v_2)`."""
        lo = bisect.bisect_left(self._densities, v_lo)
        hi = bisect.bisect_left(self._densities, v_hi)
        return sum(self._allotments[lo:hi])

    def load_at_least(self, v: float) -> int:
        """Total allotment of ``v``-dense jobs (density >= v)."""
        lo = bisect.bisect_left(self._densities, v)
        return sum(self._allotments[lo:])

    def can_insert(
        self, density: float, allotment: int, c: float, capacity: float
    ) -> bool:
        """Condition (2): would inserting ``(density, allotment)`` keep
        every band load at most ``capacity``?

        Only bands anchored at jobs with density in ``(density/c,
        density]`` (including the new job's own band) can gain load, so
        only those are checked.  Precondition: the tracked set already
        satisfies the invariant (``max_band_load(c) <= capacity``) --
        which the scheduler maintains by only inserting after this
        check succeeds.
        """
        # The new job's own band [v, c v).
        if self.band_load(density, c * density) + allotment > capacity + 1e-9:
            return False
        # Existing anchors whose band [v_j, c v_j) contains the new density.
        lo = bisect.bisect_right(self._densities, density / c)
        hi = bisect.bisect_right(self._densities, density)
        for pos in range(lo, hi):
            v_j = self._densities[pos]
            if self.band_load(v_j, c * v_j) + allotment > capacity + 1e-9:
                return False
        return True

    def max_band_load(self, c: float) -> int:
        """Maximum load of any band ``[v_j, c v_j)`` anchored at a
        tracked job -- Observation 3 asserts this stays <= b*m."""
        best = 0
        for v in self._densities:
            load = self.band_load(v, c * v)
            if load > best:
                best = load
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DensityBands(jobs={len(self._jobs)})"
