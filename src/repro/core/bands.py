"""Density-band occupancy structure for the admission condition.

Condition (2) of the paper's scheduler admits a job :math:`J_i` only if,
for every job :math:`J_j` in the started set (including :math:`J_i`),
the total allotment of jobs with density in :math:`[v_j, c\\,v_j)` stays
at most :math:`b\\,m`.  :class:`DensityBands` maintains the multiset of
``(density, allotment)`` pairs and answers

* :meth:`band_load` -- the paper's :math:`N(T, v_1, v_2)`;
* :meth:`can_insert` -- the full condition (2) check, using the
  observation (also used in the paper's Lemma 18) that inserting a job
  of density :math:`v` only perturbs bands anchored at densities
  :math:`v_j \\in (v/c, v]`.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator


class DensityBands:
    """Multiset of (density, allotment) pairs with band-load queries.

    Densities are kept in a sorted list; loads are computed over slices.
    Sizes in this problem are modest (the started set never exceeds a
    few hundred jobs), so O(band width) per query is the right
    simplicity/performance trade-off -- profile before replacing with a
    Fenwick tree.
    """

    def __init__(self) -> None:
        self._densities: list[float] = []  # sorted ascending
        self._allotments: list[int] = []  # parallel to _densities
        self._keys: list[tuple[float, int]] = []  # (density, job_id), sorted
        self._jobs: dict[int, tuple[float, int]] = {}  # job_id -> (v, n)
        # Lazily rebuilt prefix sums over _allotments: band queries are
        # far more frequent than inserts/removes (every admission check
        # scans a band range), and allotments are ints, so prefix
        # differences are exact -- no float-order concerns.
        self._prefix: list[int] | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def density_of(self, job_id: int) -> float:
        """Density of a tracked job."""
        return self._jobs[job_id][0]

    def allotment_of(self, job_id: int) -> int:
        """Allotment of a tracked job."""
        return self._jobs[job_id][1]

    def items(self) -> Iterator[tuple[int, float, int]]:
        """Iterate ``(job_id, density, allotment)`` in density order."""
        for v, job_id in self._keys:
            yield job_id, v, self._jobs[job_id][1]

    # ------------------------------------------------------------------
    def insert(self, job_id: int, density: float, allotment: int) -> None:
        """Track a job (no admission check -- see :meth:`can_insert`)."""
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} already tracked")
        if density <= 0 or not math.isfinite(density):
            raise ValueError("density must be positive and finite")
        if allotment < 1:
            raise ValueError("allotment must be >= 1")
        key = (density, job_id)
        pos = bisect.bisect_left(self._keys, key)
        self._keys.insert(pos, key)
        self._densities.insert(pos, density)
        self._allotments.insert(pos, allotment)
        self._jobs[job_id] = (density, allotment)
        self._prefix = None

    def remove(self, job_id: int) -> None:
        """Stop tracking a job."""
        density, _ = self._jobs.pop(job_id)
        pos = bisect.bisect_left(self._keys, (density, job_id))
        assert self._keys[pos] == (density, job_id)
        del self._keys[pos]
        del self._densities[pos]
        del self._allotments[pos]
        self._prefix = None

    # ------------------------------------------------------------------
    def _prefix_sums(self) -> list[int]:
        prefix = self._prefix
        if prefix is None:
            prefix = [0] * (len(self._allotments) + 1)
            acc = 0
            for i, a in enumerate(self._allotments):
                acc += a
                prefix[i + 1] = acc
            self._prefix = prefix
        return prefix

    def band_load(self, v_lo: float, v_hi: float) -> int:
        """Total allotment of jobs with density in ``[v_lo, v_hi)`` --
        the paper's :math:`N(T, v_1, v_2)`."""
        lo = bisect.bisect_left(self._densities, v_lo)
        hi = bisect.bisect_left(self._densities, v_hi)
        prefix = self._prefix_sums()
        return prefix[hi] - prefix[lo]

    def load_at_least(self, v: float) -> int:
        """Total allotment of ``v``-dense jobs (density >= v)."""
        lo = bisect.bisect_left(self._densities, v)
        prefix = self._prefix_sums()
        return prefix[-1] - prefix[lo]

    def can_insert(
        self, density: float, allotment: int, c: float, capacity: float
    ) -> bool:
        """Condition (2): would inserting ``(density, allotment)`` keep
        every band load at most ``capacity``?

        Only bands anchored at jobs with density in ``(density/c,
        density]`` (including the new job's own band) can gain load, so
        only those are checked.  Precondition: the tracked set already
        satisfies the invariant (``max_band_load(c) <= capacity``) --
        which the scheduler maintains by only inserting after this
        check succeeds.
        """
        densities = self._densities
        prefix = self._prefix
        if prefix is None:
            prefix = self._prefix_sums()
        bl = bisect.bisect_left
        limit = capacity + 1e-9
        # The new job's own band [v, c v).
        lo = bl(densities, density)
        hi = bl(densities, c * density)
        if prefix[hi] - prefix[lo] + allotment > limit:
            return False
        # Existing anchors whose band [v_j, c v_j) contains the new density.
        lo = bisect.bisect_right(densities, density / c)
        hi = bisect.bisect_right(densities, density)
        prev_v = None
        for pos in range(lo, hi):
            v_j = densities[pos]
            if v_j == prev_v:
                continue  # duplicate anchor: identical band, already checked
            prev_v = v_j
            # every anchor in this range exceeds density/c >= densities[lo-1],
            # so the first occurrence of v_j in the sorted list is `pos`
            # itself -- no bisect needed for the band's lower edge
            b_hi = bl(densities, c * v_j)
            if prefix[b_hi] - prefix[pos] + allotment > limit:
                return False
        return True

    def blocking_band(
        self, density: float, allotment: int, c: float, capacity: float
    ) -> tuple[float, float, int] | None:
        """Condition (2) check that reports the violated band.

        Returns ``None`` exactly when :meth:`can_insert` would return
        ``True``; otherwise ``(v, c*v, load)`` for the first over-full
        band found (anchored at ``v``).  The promote scan uses the
        reported band to reject later candidates without re-scanning:
        band loads only grow during one promote pass, so any candidate
        whose density lies in ``[v, c*v)`` -- which makes the band one
        of the bands :meth:`can_insert` would check for it -- and whose
        allotment still overfills the *cached* load is provably
        rejected.
        """
        densities = self._densities
        prefix = self._prefix
        if prefix is None:
            prefix = self._prefix_sums()
        bl = bisect.bisect_left
        limit = capacity + 1e-9
        # The new job's own band [v, c v).
        lo = bl(densities, density)
        hi = bl(densities, c * density)
        load = prefix[hi] - prefix[lo]
        if load + allotment > limit:
            return (density, c * density, load)
        # Existing anchors whose band [v_j, c v_j) contains the new density.
        lo = bisect.bisect_right(densities, density / c)
        hi = bisect.bisect_right(densities, density)
        prev_v = None
        for pos in range(lo, hi):
            v_j = densities[pos]
            if v_j == prev_v:
                continue  # duplicate anchor: identical band, already checked
            prev_v = v_j
            # first occurrence of v_j is `pos` itself (see can_insert)
            b_hi = bl(densities, c * v_j)
            load = prefix[b_hi] - prefix[pos]
            if load + allotment > limit:
                return (v_j, c * v_j, load)
        return None

    def max_band_load(self, c: float) -> int:
        """Maximum load of any band ``[v_j, c v_j)`` anchored at a
        tracked job -- Observation 3 asserts this stays <= b*m."""
        best = 0
        for v in self._densities:
            load = self.band_load(v, c * v)
            if load > best:
                best = load
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DensityBands(jobs={len(self._jobs)})"
