"""The paper's contribution: scheduler S and its general-profit variant.

* :class:`~repro.core.sns.SNSScheduler` -- Theorem 2's algorithm for
  jobs with deadlines (Section 3).
* :class:`~repro.core.profit_scheduler.GeneralProfitScheduler` --
  Theorem 3's algorithm for arbitrary non-increasing profit functions
  (Section 5).
* :class:`~repro.core.theory.Constants` -- the constants
  (delta, c, b, a) and the proven competitive-ratio bounds.
* :class:`~repro.core.invariants.InvariantMonitor` -- runtime checks of
  the lemmas the analysis rests on.
"""

from repro.core.theory import Constants
from repro.core.bands import DensityBands
from repro.core.sns import SNSJobState, SNSScheduler
from repro.core.profit_scheduler import GeneralProfitScheduler, ProfitJobState
from repro.core.invariants import (
    InvariantMonitor,
    InvariantReport,
    check_lemma15_slot_bands,
)

__all__ = [
    "Constants",
    "DensityBands",
    "SNSJobState",
    "SNSScheduler",
    "GeneralProfitScheduler",
    "ProfitJobState",
    "InvariantMonitor",
    "InvariantReport",
    "check_lemma15_slot_bands",
]
