"""Runtime verification of the paper's structural lemmas.

:class:`InvariantMonitor` wraps an :class:`~repro.core.sns.SNSScheduler`
and, after every event, re-checks the inequalities the analysis rests
on.  The lemma-invariant experiment (E8) runs entire workloads under the
monitor and reports violation counts (expected: zero under Theorem 2's
assumption).

Checked invariants
------------------
* **Lemma 1**: integral allotment ``n_i <= ceil(b^2 m)`` for every job
  whose deadline satisfies the slack assumption.
* **Lemma 2**: every such job is delta-good.
* **Lemma 3**: ``x_i n_i <= a W_i`` (+ integrality allowance).
* **Observation 3**: every density band ``[v, c v)`` over Q carries at
  most ``b m`` allotment, at all times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sns import SNSJobState, SNSScheduler
from repro.sim.jobs import JobView


@dataclass
class InvariantReport:
    """Accumulated results of invariant checking."""

    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no invariant was ever violated."""
        return not self.violations

    def record(self, message: str) -> None:
        """Register a violation."""
        self.violations.append(message)


class InvariantMonitor:
    """Scheduler wrapper re-checking the paper's lemmas at every event.

    Use exactly like the wrapped scheduler::

        sched = SNSScheduler(epsilon=1.0)
        monitor = InvariantMonitor(sched)
        result = Simulator(m=8, scheduler=monitor).run(specs)
        assert monitor.report.ok

    Jobs violating Theorem 2's deadline-slack *assumption* are noted
    separately (``assumption_violations``) -- the lemmas are only
    promised for conforming inputs.
    """

    def __init__(self, inner: SNSScheduler) -> None:
        self.inner = inner
        self.report = InvariantReport()
        self.assumption_violations = 0

    # -- delegated protocol -------------------------------------------
    def on_start(self, m: int, speed: float) -> None:
        """Forward, then snapshot machine size."""
        self.inner.on_start(m, speed)

    def on_arrival(self, job: JobView, t: int) -> None:
        """Forward, then check per-job lemmas and Observation 3."""
        self.inner.on_arrival(job, t)
        self._check_job(self.inner.all_states[job.job_id], t)
        self._check_bands(t)

    def on_completion(self, job: JobView, t: int) -> None:
        """Forward, then re-check Observation 3 (promotions happened)."""
        self.inner.on_completion(job, t)
        self._check_bands(t)

    def on_expiry(self, job: JobView, t: int) -> None:
        """Forward, then re-check Observation 3."""
        self.inner.on_expiry(job, t)
        self._check_bands(t)

    def allocate(self, t: int) -> dict[int, int]:
        """Forward; allocation itself is validated by the engine."""
        return self.inner.allocate(t)

    def wakeup_after(self, t: int):
        """Forward."""
        return self.inner.wakeup_after(t)

    def assign_deadline(self, job: JobView, t: int):
        """Forward."""
        return self.inner.assign_deadline(job, t)

    # -- checks ---------------------------------------------------------
    def _meets_assumption(self, job: JobView) -> bool:
        consts = self.inner.constants
        rel = job.relative_deadline
        if rel is None:
            return False
        work = job.work / self.inner.speed
        span = job.span / self.inner.speed
        return rel >= consts.slack_requirement(work, span, self.inner.m) - 1e-9

    def _check_job(self, state: SNSJobState, t: int) -> None:
        consts = self.inner.constants
        job = state.view
        if not self._meets_assumption(job):
            self.assumption_violations += 1
            return
        self.report.checks += 1
        m = self.inner.m
        # Lemma 1 (+1 for ceil rounding of the real-valued allotment)
        if state.allotment > consts.allotment_cap(m) + 1:
            self.report.record(
                f"Lemma1 job={job.job_id}: n={state.allotment} > "
                f"b^2 m + 1 = {consts.allotment_cap(m) + 1:.4g}"
            )
        # Lemma 2
        if not state.delta_good:
            self.report.record(f"Lemma2 job={job.job_id}: not delta-good")
        # Lemma 3: x n <= a W (speed-scaled work, matching compute_state).
        # Integral ceil-rounding of n can add up to one processor for x
        # steps, so allow an x-sized slack on top of the exact bound.
        work = job.work / self.inner.speed
        if state.x * state.allotment > consts.a * work + state.x + 1e-6:
            self.report.record(
                f"Lemma3 job={job.job_id}: x*n={state.x * state.allotment:.6g} "
                f"> a*W + x={consts.a * work + state.x:.6g}"
            )

    def _check_bands(self, t: int) -> None:
        consts = self.inner.constants
        self.report.checks += 1
        load = self.inner.bands.max_band_load(consts.c)
        if load > consts.band_capacity(self.inner.m) + 1e-9:
            self.report.record(
                f"Obs3 t={t}: band load {load} > b m = "
                f"{consts.band_capacity(self.inner.m):.4g}"
            )


def check_lemma15_slot_bands(scheduler) -> list[str]:
    """Lemma 15 for the general-profit scheduler: at every future time
    step ``t``, the jobs assigned to ``t`` keep every density band
    ``[v, c v)`` at load at most ``b m``.

    Call after (or during) a run with a
    :class:`~repro.core.profit_scheduler.GeneralProfitScheduler`;
    returns violation messages (empty = invariant holds).
    """
    consts = scheduler.constants
    capacity = consts.band_capacity(scheduler.m)
    problems: list[str] = []
    for t, bands in scheduler._slots.items():
        if len(bands) == 0:
            continue
        load = bands.max_band_load(consts.c)
        if load > capacity + 1e-9:
            problems.append(
                f"Lemma15 t={t}: slot band load {load} > b m = {capacity:.4g}"
            )
    return problems
