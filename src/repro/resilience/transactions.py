"""Transactional cross-shard steals: exactly-once under crashes.

A coordinator steal is a two-phase move -- extract the victim from its
donor, inject it into its receiver -- and between the phases the job
exists only in the parent process's memory.  A crash of either endpoint
at the wrong instant therefore either *loses* the job (receiver died
before injection) or *duplicates* it (donor restored from a checkpoint
that still contains the victim).  :class:`StealJournal` closes both
holes: every move is journaled as an ``intent`` / ``transfer`` /
``commit`` triple (``transfer`` carries the full migration payload, so
an in-flight job is durable), and :func:`resolve_pending` /
:func:`reconcile_shard` replay the journal against live shard state to
re-establish exactly-one placement -- or a *recorded* expiry when the
job's deadline passed in transit and no live shard can take it.

Record kinds (CRC32-framed JSON, same byte framing as the WAL --
see :mod:`repro.resilience.wal`)::

    intent   {"k":"intent","txn":n,"t":t,"job":j,"src":i,"dst":r,"kind":s}
    transfer {"k":"transfer","txn":n,"payload":{...extract_many dict...}}
    commit   {"k":"commit","txn":n}
    abort    {"k":"abort","txn":n,"reason":str}
    expire   {"k":"expire","txn":n}

A transaction with a ``transfer`` but no terminal record is *pending*:
the extraction happened but the injection's fate is unknown.  A torn
tail inside the triple (intent present, commit sheared off) recovers to
an **abort** -- the donor keeps the job -- never to a duplicate.

The journal is decision-free: it never changes which moves the planner
makes, only makes their outcome durable, so fault-free runs with
journaling enabled stay bit-identical to unjournaled runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ShardFailedError, WALError
from repro.resilience.wal import pack_frame, scan_frames

#: File magic for steal-transaction journals (framing shared with WAL).
TXN_MAGIC = b"RTXJ0001"

#: Transaction states, in lifecycle order.
TXN_STATES = ("intent", "transfer", "committed", "aborted", "expired")


@dataclass
class StealTxn:
    """One journaled steal: a job moving ``src`` -> ``dst`` at ``t``."""

    txn_id: int
    t: int
    job_id: int
    src: int
    dst: int
    kind: str
    state: str = "intent"
    payload: Optional[dict[str, Any]] = None
    reason: Optional[str] = None
    #: journal sequence number of the terminal record (0 = unsettled);
    #: lets recovery decide whether a restored checkpoint already
    #: reflects this move (checkpoint mark >= settled_seq) or predates
    #: it and needs repair
    settled_seq: int = 0

    @property
    def pending(self) -> bool:
        """True while the move's outcome is not yet durable."""
        return self.state in ("intent", "transfer")


class StealJournal:
    """Append-only journal of steal transactions with torn-tail recovery.

    Parameters
    ----------
    path:
        Journal file.  ``None`` keeps the journal in memory only --
        transactional semantics within the process (mid-tick crash of a
        *shard* is still recoverable) without durability against a
        parent-process fault.
    fsync_every:
        Records between fsyncs when durable (1 = every record).
    """

    def __init__(
        self,
        path: Optional[str | os.PathLike] = None,
        *,
        fsync_every: int = 8,
    ) -> None:
        if fsync_every < 1:
            raise WALError("fsync_every must be >= 1")
        self.path = None if path is None else str(path)
        self.fsync_every = int(fsync_every)
        self.txns: dict[int, StealTxn] = {}
        #: monotonic count of journal records (including recovered
        #: ones); checkpoints carry the value current at snapshot time
        self.seq = 0
        #: bytes cut off the tail when the file was opened (0 = clean)
        self.truncated_bytes = 0
        #: True while a steal tick is mid-flight: recovery hooks must
        #: not resolve transactions the tick is still executing
        self.in_tick = False
        self._pending_writes = 0
        self._fh = None
        if self.path is None:
            return
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            self._recover()
            self._fh = open(self.path, "ab")
        else:
            self._fh = open(self.path, "wb")
            self._fh.write(TXN_MAGIC)
            self._fh.flush()
            os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    # Lifecycle records
    # ------------------------------------------------------------------
    def begin(
        self, *, t: int, job_id: int, src: int, dst: int, kind: str
    ) -> int:
        """Journal an ``intent`` and return the new transaction id."""
        txn_id = len(self.txns)
        txn = StealTxn(
            txn_id=txn_id, t=int(t), job_id=int(job_id),
            src=int(src), dst=int(dst), kind=str(kind),
        )
        self.txns[txn_id] = txn
        self._append({
            "k": "intent", "txn": txn_id, "t": txn.t, "job": txn.job_id,
            "src": txn.src, "dst": txn.dst, "kind": txn.kind,
        })
        return txn_id

    def transfer(self, txn_id: int, payload: dict[str, Any]) -> None:
        """Journal the extracted migration payload (job now durable)."""
        txn = self._require(txn_id, "intent")
        txn.payload = payload
        txn.state = "transfer"
        self._append({"k": "transfer", "txn": txn_id, "payload": payload})

    def commit(self, txn_id: int) -> None:
        """Journal success: the job lives on ``dst`` exactly once."""
        txn = self._require(txn_id)
        txn.state = "committed"
        self._append({"k": "commit", "txn": txn_id})
        txn.settled_seq = self.seq

    def abort(self, txn_id: int, reason: str) -> None:
        """Journal abandonment: the job stays (or returns to) ``src``."""
        txn = self._require(txn_id)
        txn.state = "aborted"
        txn.reason = str(reason)
        self._append({"k": "abort", "txn": txn_id, "reason": txn.reason})
        txn.settled_seq = self.seq

    def expire(self, txn_id: int) -> None:
        """Journal a recorded expiry: the job's deadline passed in
        transit and no live shard could take it."""
        txn = self._require(txn_id)
        txn.state = "expired"
        self._append({"k": "expire", "txn": txn_id})
        txn.settled_seq = self.seq

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pending(self) -> list[StealTxn]:
        """Unresolved transactions, oldest first."""
        return [txn for txn in self.txns.values() if txn.pending]

    def latest_for_job(self, job_id: int) -> Optional[StealTxn]:
        """The newest transaction involving ``job_id`` (any state)."""
        latest = None
        for txn in self.txns.values():
            if txn.job_id == job_id:
                latest = txn
        return latest

    def counts(self) -> dict[str, int]:
        """Transactions per state (for metrics and reports)."""
        out = {state: 0 for state in TXN_STATES}
        for txn in self.txns.values():
            out[txn.state] += 1
        return out

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush buffered records and fsync (no-op in memory mode)."""
        if self._fh is None or self._fh.closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._pending_writes = 0

    def close(self) -> None:
        """Sync and close the journal file (idempotent)."""
        if self._fh is None or self._fh.closed:
            return
        self.sync()
        self._fh.close()

    def __enter__(self) -> "StealJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _append(self, record: dict[str, Any]) -> None:
        self.seq += 1
        if self._fh is None:
            return
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self._fh.write(pack_frame(payload))
        self._pending_writes += 1
        if self._pending_writes >= self.fsync_every:
            self.sync()

    def _require(self, txn_id: int, *states: str) -> StealTxn:
        txn = self.txns.get(txn_id)
        if txn is None:
            raise WALError(f"unknown steal transaction {txn_id}")
        if states and txn.state not in states:
            raise WALError(
                f"steal transaction {txn_id} is {txn.state}, "
                f"expected {'/'.join(states)}"
            )
        return txn

    def _recover(self) -> None:
        with open(self.path, "rb") as fh:
            data = fh.read()
        payloads, good = scan_frames(data, TXN_MAGIC, self.path)
        for raw in payloads:
            self.seq += 1
            record = json.loads(raw.decode("utf-8"))
            kind = record["k"]
            if kind == "intent":
                txn_id = int(record["txn"])
                self.txns[txn_id] = StealTxn(
                    txn_id=txn_id, t=int(record["t"]),
                    job_id=int(record["job"]), src=int(record["src"]),
                    dst=int(record["dst"]), kind=str(record["kind"]),
                )
            else:
                txn = self.txns.get(int(record["txn"]))
                if txn is None:
                    continue  # intent lost to an earlier torn tail
                if kind == "transfer":
                    txn.payload = record["payload"]
                    txn.state = "transfer"
                elif kind == "commit":
                    txn.state = "committed"
                    txn.settled_seq = self.seq
                elif kind == "abort":
                    txn.state = "aborted"
                    txn.reason = record.get("reason")
                    txn.settled_seq = self.seq
                elif kind == "expire":
                    txn.state = "expired"
                    txn.settled_seq = self.seq
        if good < len(data):
            self.truncated_bytes = len(data) - good
            with open(self.path, "r+b") as fh:
                fh.truncate(good)
                fh.flush()
                os.fsync(fh.fileno())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StealJournal({self.path!r}, txns={len(self.txns)}, "
            f"pending={len(self.pending())})"
        )


# ----------------------------------------------------------------------
# Replay: re-establish exactly-one placement from the journal.
# ----------------------------------------------------------------------
def _probe_active(shard, job_id: int) -> Optional[dict[str, Any]]:
    """Extract ``job_id`` from ``shard`` if it is live there.

    The caller decides whether to put the payload back (probe) or keep
    it out (discard/move); extraction+injection is lossless.
    """
    if shard is None or not shard.alive:
        return None
    try:
        results = shard.extract_many([job_id])
    except ShardFailedError:
        return None
    return results[0] if results else None


def _queued_has(shard, job_id: int, t: int) -> bool:
    """True when ``job_id`` sits in ``shard``'s ingest queue.

    Implemented as drain + re-submit (the only queue access the shard
    interface exposes); order within the queue is preserved because
    ``take_queued`` pops newest-first and submission re-appends oldest-
    first.
    """
    if shard is None or not shard.alive:
        return False
    try:
        depth = shard.stats().queue_depth
        if not depth:
            return False
        specs = shard.take_queued(depth)
    except ShardFailedError:
        return False
    found = False
    for spec in reversed(specs):  # take_queued returns newest-first
        if spec.job_id == job_id:
            found = True
        shard.submit(spec, t)
    return found


def _forget_pending(shard, job_id: int):
    """Withdraw ``job_id`` from ``shard``'s engine-pending heap.

    A log replay re-submits at the restored clock, which leaves the job
    *pending* -- released to the engine at its arrival instant but not
    yet live, so neither :func:`_probe_active` nor the queue probes can
    see it.  Returns the withdrawn spec or ``None``.
    """
    if shard is None or not shard.alive:
        return None
    try:
        return shard.forget_pending(job_id)
    except ShardFailedError:
        return None


def _purge_queued(shard, job_id: int, t: int) -> bool:
    """Remove ``job_id`` from ``shard``'s ingest queue if present."""
    if shard is None or not shard.alive:
        return False
    try:
        depth = shard.stats().queue_depth
        if not depth:
            return False
        specs = shard.take_queued(depth)
    except ShardFailedError:
        return False
    purged = False
    for spec in reversed(specs):
        if spec.job_id == job_id:
            purged = True
            continue
        shard.submit(spec, t)
    return purged


def _shard(cluster, index: int):
    shards = cluster.shards
    if 0 <= index < len(shards):
        return shards[index]
    return None


def resolve_pending(journal: StealJournal, cluster, t: int) -> list[dict]:
    """Replay every pending transaction to exactly-one placement.

    Called after a shard recovery (mid-tick crash) or at cluster start
    over a pre-existing journal.  Decision order per transaction:

    1. Job still on ``src`` (live, queued, or replay-pending)?  The
       move never durably left the donor: **abort**, donor keeps it.
       This is the torn-triple case -- intent without commit recovers
       to an abort.
    2. No journaled payload?  Nothing durable moved: **abort**.
    3. Job already live on ``dst``?  The injection won and only the
       commit record was lost: **commit**.
    4. Otherwise inject the journaled payload into ``dst`` (commit) or,
       failing that, back into ``src`` (abort).  The engine records an
       immediate expiry for payloads whose deadline passed in transit,
       so either way the job keeps exactly one terminal record.
    5. Both endpoints dead: journal a recorded **expiry**.
    """
    outcomes: list[dict] = []
    for txn in journal.pending():
        src = _shard(cluster, txn.src)
        dst = _shard(cluster, txn.dst)
        outcome = "expired"
        probe = _probe_active(src, txn.job_id)
        if probe is not None:
            src.inject_many([probe], t)
            journal.abort(txn.txn_id, "src-retained")
            outcome = "aborted"
        elif _queued_has(src, txn.job_id, t):
            journal.abort(txn.txn_id, "src-queued")
            outcome = "aborted"
        elif (spec := _forget_pending(src, txn.job_id)) is not None:
            # replayed onto the donor at the current instant: pending in
            # its engine, invisible to the probes above -- resubmit and
            # let the donor keep it
            src.submit(spec, t)
            journal.abort(txn.txn_id, "src-pending")
            outcome = "aborted"
        elif txn.payload is None:
            journal.abort(txn.txn_id, "no-transfer")
            outcome = "aborted"
        else:
            landed = _probe_active(dst, txn.job_id)
            if landed is not None:
                dst.inject_many([landed], t)
                journal.commit(txn.txn_id)
                outcome = "committed"
            else:
                placed = False
                for shard, state, reason in (
                    (dst, "committed", None),
                    (src, "aborted", "returned-to-src"),
                ):
                    if shard is None or not shard.alive:
                        continue
                    try:
                        shard.inject_many([txn.payload], t)
                    except ShardFailedError:
                        continue
                    if state == "committed":
                        journal.commit(txn.txn_id)
                    else:
                        journal.abort(txn.txn_id, reason)
                    outcome = state
                    placed = True
                    break
                if not placed:
                    journal.expire(txn.txn_id)
        outcomes.append({
            "txn": txn.txn_id, "job": txn.job_id, "src": txn.src,
            "dst": txn.dst, "outcome": outcome,
        })
    journal.sync()
    return outcomes


def reconcile_shard(
    journal: StealJournal, cluster, index: int, t: int, *,
    since_seq: int = 0,
) -> list[dict]:
    """Repair a just-recovered shard against committed/aborted steals.

    A restore rolls the shard back to its last checkpoint, which may
    predate moves the journal already settled: a donor's checkpoint can
    still *contain* a victim that committed to another shard (duplicate),
    and a receiver's checkpoint can *lack* a job whose injection
    committed (loss).  For every settled transaction touching ``index``
    the authoritative location is the journal's verdict -- committed =>
    ``dst``, aborted => ``src`` -- and this pass removes resurrected
    copies and re-injects lost ones (from the journaled payload) until
    the shard agrees.  Pending transactions are handled separately by
    :func:`resolve_pending`.

    ``since_seq`` is the journal sequence the restored checkpoint was
    taken at: transactions settled at or before it are already baked
    into the checkpoint (repairing them would *introduce* duplicates --
    e.g. re-injecting a job the restored state already completed) and
    are skipped.
    """
    shard = _shard(cluster, index)
    if shard is None or not shard.alive:
        return []
    actions: list[dict] = []
    # newest transaction per job wins: a job can legally bounce between
    # shards across ticks, and only its final settled location is
    # authoritative
    latest: dict[int, StealTxn] = {}
    for txn in journal.txns.values():
        latest[txn.job_id] = txn
    for job_id, txn in latest.items():
        if txn.state not in ("committed", "aborted"):
            continue  # pending: resolve_pending owns it
        if txn.settled_seq <= since_seq:
            continue  # checkpoint already reflects this move
        home = txn.dst if txn.state == "committed" else txn.src
        if home == index:
            if txn.payload is None:
                continue
            here = _probe_active(shard, job_id)
            if here is not None:
                shard.inject_many([here], t)  # present: put the probe back
            else:
                # a replayed copy may hide in the ingest queue or the
                # engine-pending heap; the journaled payload (with its
                # execution progress) supersedes it, so clear both
                # before reinjecting -- a leftover copy would later
                # collide with the injected id
                _purge_queued(shard, job_id, t)
                _forget_pending(shard, job_id)
                try:
                    shard.inject_many([txn.payload], t)
                except ShardFailedError:
                    continue
                actions.append({"job": job_id, "action": "reinjected"})
        else:
            # restored copy of a job that settled elsewhere: discard it
            # (its single terminal record belongs to its home shard)
            stray = _probe_active(shard, job_id)
            if stray is not None:
                actions.append({"job": job_id, "action": "discarded"})
            elif _purge_queued(shard, job_id, t):
                actions.append({"job": job_id, "action": "purged-queued"})
            elif _forget_pending(shard, job_id) is not None:
                actions.append({"job": job_id, "action": "purged-pending"})
    return actions
