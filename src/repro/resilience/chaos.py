"""Deterministic chaos injection for the resilient cluster.

The resilience stack's correctness claim is sharp: under any schedule
of injected faults, a supervised cluster's **completed records and
profit are bit-identical to the fault-free run**, with zero admitted
jobs lost or double-counted.  This module makes that claim executable:

* :class:`ChaosSchedule` -- a deterministic fault schedule, either
  generated from a seed (:meth:`ChaosSchedule.generate`) or parsed from
  a compact spec string (:meth:`ChaosSchedule.parse`, e.g.
  ``"crash:0:200,hang:1:450"``);
* :class:`ChaosInjector` -- duck-types the PR 3
  :class:`~repro.cluster.faults.FaultInjector` interface
  (``maybe_fire``), firing each scheduled fault through the cluster's
  ``inject_*`` surface at its simulated time;
* :func:`run_chaos` -- drives the same workload through a fault-free
  and a fault-injected :class:`~repro.resilience.cluster.
  ResilientClusterService` and diffs them into a :class:`ChaosReport`.

Fault kinds (:data:`FAULT_KINDS`):

========================  ==============================================
kind                      what it does
========================  ==============================================
``crash``                 kill the shard outright (state lost)
``hang``                  shard alive but unresponsive (liveness bug)
``slow-rpc``              added latency, no state change
``pipe-drop``             command channel severed mid-run
``corrupt-checkpoint``    newest checkpoint corrupted, then a crash, so
                          recovery must fall back a generation (or to
                          an empty restore plus full-log replay)
``steal-interrupt``       crash the steal target *between* the extract
                          and inject phases of the next steal tick --
                          jobs exist only in transit, and the steal
                          journal is the sole source of truth
``scale-during-crash``    crash a shard and immediately drive an
                          elastic scale step while it is down (plain
                          crash on a non-elastic cluster)
``ledger-partition``      partition the coordinator's band ledger from
                          shard state: anchor-only degraded routing
                          until the window drains
``tick-stall``            stall the gateway loop for a tick while
                          arrivals keep buffering (no-op offline)
========================  ==============================================

The first five (:data:`CORE_FAULT_KINDS`) hold the PR 4 claim --
bit-identity with the fault-free run -- on any supervised cluster.
The last four (:data:`COORDINATION_FAULT_KINDS`) target the
coordinated/elastic stack, where the claim is the
:mod:`~repro.resilience.audit` invariants plus a gated profit floor
(:func:`run_gateway_chaos`): degraded runs may shed, but the books
must balance.

Run as a module for the CI smoke gate (exit 0 iff every seeded
schedule preserves bit-identity)::

    python -m repro.resilience.chaos --seed 1 --shards 2 --mode process

or, for the end-to-end gateway chaos gate (exit 0 iff the invariant
auditor passes)::

    python -m repro.resilience.chaos --gateway --seed 1
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.config import ShardConfig
from repro.errors import ClusterError
from repro.resilience.cluster import ResilientClusterService
from repro.resilience.rpc import RpcPolicy
from repro.resilience.supervisor import SupervisorConfig
from repro.sim.jobs import JobSpec

#: Fault classes every supervised cluster recovers from bit-identically.
CORE_FAULT_KINDS = (
    "crash", "hang", "slow-rpc", "pipe-drop", "corrupt-checkpoint",
)
#: Fault classes targeting the coordinated / elastic / gateway stack.
COORDINATION_FAULT_KINDS = (
    "steal-interrupt", "scale-during-crash", "ledger-partition", "tick-stall",
)
#: Every fault class the harness can inject.
FAULT_KINDS = CORE_FAULT_KINDS + COORDINATION_FAULT_KINDS


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: ``kind`` hits ``shard`` at simulated ``at``."""

    kind: str
    shard: int
    at: int

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ClusterError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )


@dataclass
class ChaosSchedule:
    """An ordered, deterministic list of :class:`ChaosEvent`."""

    events: list[ChaosEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        k: int,
        horizon: int,
        n_events: int = 3,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "ChaosSchedule":
        """Seeded random schedule: ``n_events`` faults over ``kinds``,
        uniform over shards and the middle of the horizon (early/late
        edges excluded so every fault lands mid-traffic)."""
        rng = random.Random(seed)
        lo, hi = max(1, horizon // 10), max(2, (9 * horizon) // 10)
        events = [
            ChaosEvent(
                kind=rng.choice(list(kinds)),
                shard=rng.randrange(k),
                at=rng.randrange(lo, hi),
            )
            for _ in range(n_events)
        ]
        return cls(sorted(events, key=lambda e: (e.at, e.shard, e.kind)))

    @classmethod
    def parse(cls, text: str) -> "ChaosSchedule":
        """Parse ``"kind:shard:at[,kind:shard:at...]"``."""
        events = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) != 3:
                raise ClusterError(
                    f"bad chaos event {part!r} (want kind:shard:at)"
                )
            events.append(
                ChaosEvent(
                    kind=pieces[0], shard=int(pieces[1]), at=int(pieces[2])
                )
            )
        return cls(sorted(events, key=lambda e: (e.at, e.shard, e.kind)))

    def spec(self) -> str:
        """The compact string :meth:`parse` round-trips."""
        return ",".join(f"{e.kind}:{e.shard}:{e.at}" for e in self.events)


class ChaosInjector:
    """Fires a :class:`ChaosSchedule` through a resilient cluster.

    Duck-types the :class:`~repro.cluster.faults.FaultInjector`
    interface the cluster's decision-point hooks call, so it plugs into
    the ``fault_injector`` slot unchanged.
    """

    def __init__(
        self, schedule: ChaosSchedule, *, hang_seconds: float = 2.0
    ) -> None:
        self.schedule = schedule
        self.hang_seconds = hang_seconds
        self.fired: list[ChaosEvent] = []
        self._pending = list(schedule.events)

    def maybe_fire(self, cluster, t: int) -> None:
        """Fire every event scheduled at or before ``t`` (once each)."""
        while self._pending and self._pending[0].at <= t:
            event = self._pending.pop(0)
            shard = event.shard % cluster.k
            if event.kind == "crash":
                cluster.inject_crash(shard)
            elif event.kind == "hang":
                cluster.inject_hang(shard, self.hang_seconds)
            elif event.kind == "slow-rpc":
                cluster.inject_slow(shard)
            elif event.kind == "pipe-drop":
                cluster.inject_pipe_drop(shard)
            elif event.kind == "corrupt-checkpoint":
                cluster.inject_corrupt_checkpoint(shard)
            elif event.kind == "steal-interrupt":
                cluster.inject_steal_interrupt(shard)
            elif event.kind == "scale-during-crash":
                cluster.inject_scale_during_crash(shard)
            elif event.kind == "ledger-partition":
                cluster.inject_ledger_partition()
            elif event.kind == "tick-stall":
                cluster.inject_tick_stall()
            self.fired.append(event)


@dataclass
class ChaosReport:
    """Fault-free vs. faulted diff for one workload + schedule."""

    schedule: str
    mode: str
    clean_profit: float
    chaos_profit: float
    identical_records: bool
    #: job ids admitted in the clean run but missing from the chaos run
    lost_jobs: list[int]
    #: job ids with a completion record in the chaos run but not clean
    extra_jobs: list[int]
    #: job ids not accounted exactly once (records/shed/cluster-shed)
    unaccounted: list[int]
    recoveries: int
    supervision_events: int
    faults_fired: int

    @property
    def ok(self) -> bool:
        """The resilience claim holds for this run."""
        return (
            self.identical_records
            and self.clean_profit == self.chaos_profit
            and not self.lost_jobs
            and not self.extra_jobs
            and not self.unaccounted
        )

    def to_dict(self) -> dict:
        """JSON-compatible summary (CI artifact)."""
        return {
            "schedule": self.schedule,
            "mode": self.mode,
            "ok": self.ok,
            "clean_profit": self.clean_profit,
            "chaos_profit": self.chaos_profit,
            "identical_records": self.identical_records,
            "lost_jobs": self.lost_jobs,
            "extra_jobs": self.extra_jobs,
            "unaccounted": self.unaccounted,
            "recoveries": self.recoveries,
            "supervision_events": self.supervision_events,
            "faults_fired": self.faults_fired,
        }


def _accounting(result, specs: Sequence[JobSpec]) -> list[int]:
    """Job ids not accounted exactly once across completion records,
    shard shed records, and cluster-level sheds."""
    submitted = [spec.job_id for spec in specs]
    recorded = set(result.records)
    shed = [rec.job_id for rec in result.shed]
    shed += [rec.job_id for rec in result.extra.get("cluster_shed", [])]
    bad = []
    seen_shed = set()
    dup_shed = set()
    for job_id in shed:
        if job_id in seen_shed:
            dup_shed.add(job_id)
        seen_shed.add(job_id)
    for job_id in submitted:
        times = (job_id in recorded) + shed.count(job_id)
        if times != 1 or job_id in dup_shed:
            bad.append(job_id)
    return sorted(bad)


def _build(
    specs: Sequence[JobSpec],
    *,
    m: int,
    k: int,
    mode: str,
    config: Optional[ShardConfig],
    injector: Optional[ChaosInjector],
    workdir: Optional[str],
    heartbeat_timeout: float,
    call_timeout: float,
) -> ResilientClusterService:
    wal_dir = f"{workdir}/wal" if workdir else None
    checkpoint_dir = f"{workdir}/ckpt" if workdir else None
    return ResilientClusterService(
        m,
        k,
        config=config,
        mode=mode,
        fault_injector=injector,
        supervisor=SupervisorConfig(
            heartbeat_timeout=heartbeat_timeout,
            heartbeat_every=1,
            max_restarts=32,
            backoff_base=0.001,
            backoff_max=0.01,
        ),
        rpc=RpcPolicy(call_timeout=call_timeout, retries=0),
        wal_dir=wal_dir,
        checkpoint_dir=checkpoint_dir,
    )


def run_chaos(
    specs: Sequence[JobSpec],
    *,
    m: int,
    k: int,
    schedule: ChaosSchedule,
    mode: str = "inprocess",
    config: Optional[ShardConfig] = None,
    workdir: Optional[str] = None,
    heartbeat_timeout: float = 0.25,
    call_timeout: float = 1.0,
    hang_seconds: float = 2.0,
) -> ChaosReport:
    """Drive ``specs`` fault-free and under ``schedule``; diff the runs.

    ``workdir`` (optional) roots the chaos run's durable WAL and
    checkpoint store (the fault-free run always stays in memory --
    durability must not change results either).
    """
    if config is None:
        config = ShardConfig(m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0})
    ordered = sorted(specs, key=lambda sp: (sp.arrival, sp.job_id))

    clean = _build(
        ordered, m=m, k=k, mode=mode, config=config, injector=None,
        workdir=None, heartbeat_timeout=heartbeat_timeout,
        call_timeout=call_timeout,
    ).run_stream(ordered)

    injector = ChaosInjector(schedule, hang_seconds=hang_seconds)
    chaos = _build(
        ordered, m=m, k=k, mode=mode, config=config, injector=injector,
        workdir=workdir, heartbeat_timeout=heartbeat_timeout,
        call_timeout=call_timeout,
    ).run_stream(ordered)

    clean_records, chaos_records = clean.records, chaos.records
    lost = sorted(set(clean_records) - set(chaos_records))
    extra = sorted(set(chaos_records) - set(clean_records))
    identical = not lost and not extra and all(
        clean_records[job_id] == chaos_records[job_id]
        for job_id in clean_records
    )
    return ChaosReport(
        schedule=schedule.spec(),
        mode=mode,
        clean_profit=clean.total_profit,
        chaos_profit=chaos.total_profit,
        identical_records=identical,
        lost_jobs=lost,
        extra_jobs=extra,
        unaccounted=_accounting(chaos, ordered),
        recoveries=len(chaos.recoveries),
        supervision_events=len(chaos.extra.get("supervision_events", [])),
        faults_fired=len(injector.fired),
    )


@dataclass
class GatewayChaosReport:
    """Invariant-audited gateway chaos run vs. its fault-free twin.

    Unlike :class:`ChaosReport`, bit-identity is *not* the claim here:
    an elastic, coordinated, autoscaled gateway under faults may shed,
    retry and rebalance differently from the fault-free run.  The claim
    is the :mod:`~repro.resilience.audit` invariants -- jobs conserved,
    exactly-once completion, WAL-before-deliver, steal transactions
    settled -- plus a profit floor relative to the fault-free run.
    """

    schedule: str
    seed: int
    clean_profit: float
    chaos_profit: float
    #: full invariant audit of the chaos run (carries the violations)
    audit: "AuditReport"
    faults_fired: int
    recoveries: int
    supervision_events: int
    degraded_shards: int
    retried: int
    clean_fingerprint: str
    chaos_fingerprint: str

    @property
    def ok(self) -> bool:
        """Every audited invariant held (profit floor included)."""
        return self.audit.ok

    def to_dict(self) -> dict:
        """JSON-compatible report (the CI audit artifact)."""
        return {
            "schedule": self.schedule,
            "seed": self.seed,
            "ok": self.ok,
            "clean_profit": self.clean_profit,
            "chaos_profit": self.chaos_profit,
            "profit_ratio": self.audit.profit_ratio,
            "faults_fired": self.faults_fired,
            "recoveries": self.recoveries,
            "supervision_events": self.supervision_events,
            "degraded_shards": self.degraded_shards,
            "retried": self.retried,
            "clean_fingerprint": self.clean_fingerprint,
            "chaos_fingerprint": self.chaos_fingerprint,
            "audit": self.audit.to_dict(),
        }


def run_gateway_chaos(
    *,
    seed: int,
    schedule: Optional[ChaosSchedule] = None,
    n_jobs: int = 160,
    m: int = 8,
    k_max: int = 4,
    k_initial: Optional[int] = None,
    load: float = 1.5,
    n_events: int = 3,
    kinds: Sequence[str] = FAULT_KINDS,
    workdir: Optional[str] = None,
    mode: str = "inprocess",
    autoscale: bool = True,
    coordinated: bool = True,
    retry: bool = True,
    steps_per_tick: int = 20,
    buffer_capacity: int = 512,
    profit_floor: float = 0.7,
    max_restarts: int = 32,
    on_exhausted: str = "degrade",
    heartbeat_timeout: float = 0.25,
    call_timeout: float = 1.0,
) -> GatewayChaosReport:
    """End-to-end gateway chaos: coordinated elastic serving under
    seeded faults, audited for the resilience invariants.

    Runs the same seeded open-loop traffic twice through a virtual-
    clock :class:`~repro.gateway.gateway.Gateway` over a coordinated
    :class:`~repro.resilience.elastic.SupervisedElasticCluster` --
    once fault-free, once under ``schedule`` -- then audits the chaos
    run with :func:`~repro.resilience.audit.audit_run` against the
    fault-free profit.  Both runs are deterministic: repeating the
    call reproduces both fingerprints bit for bit.
    """
    from repro.cluster.coordinator import coordinate
    from repro.gateway.autoscale import Autoscaler
    from repro.gateway.clock import VirtualClock
    from repro.gateway.gateway import Gateway
    from repro.gateway.ingest import RetryQueue
    from repro.gateway.load import LoadConfig, LoadGenerator
    from repro.resilience.audit import audit_run
    from repro.resilience.elastic import SupervisedElasticCluster

    load_config = LoadConfig(
        n_jobs=n_jobs, m=m, load=load, epsilon=1.0, seed=seed
    )
    specs = list(LoadGenerator(load_config))
    horizon = max((spec.arrival for spec in specs), default=0) or 1
    if schedule is None:
        schedule = ChaosSchedule.generate(
            seed, k=k_max, horizon=horizon, n_events=n_events, kinds=kinds
        )

    def one_run(injector, run_dir):
        cluster = SupervisedElasticCluster(
            m,
            k_max,
            k_initial=k_initial,
            config=ShardConfig(
                m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0}
            ),
            router="band-aware" if coordinated else "least-loaded",
            mode=mode,
            fault_injector=injector,
            supervisor=SupervisorConfig(
                heartbeat_timeout=heartbeat_timeout,
                heartbeat_every=1,
                max_restarts=max_restarts,
                backoff_base=0.001,
                backoff_max=0.01,
                on_exhausted=on_exhausted,
            ),
            rpc=RpcPolicy(call_timeout=call_timeout, retries=0),
            wal_dir=f"{run_dir}/wal" if run_dir else None,
            checkpoint_dir=f"{run_dir}/ckpt" if run_dir else None,
        )
        if coordinated:
            coordinate(cluster)
        gateway = Gateway(
            cluster,
            LoadGenerator(load_config),
            clock=VirtualClock(),
            steps_per_tick=steps_per_tick,
            buffer_capacity=buffer_capacity,
            autoscaler=(
                Autoscaler(k_min=1, k_max=k_max) if autoscale else None
            ),
            retry=RetryQueue(seed=seed) if retry else None,
        )
        return gateway.run()

    clean = one_run(None, None)
    injector = ChaosInjector(schedule)
    chaos = one_run(injector, workdir)

    audit = audit_run(
        chaos,
        specs,
        baseline_profit=clean.total_profit,
        profit_floor=profit_floor,
        wal_dir=f"{workdir}/wal" if workdir else None,
    )
    extra = chaos.cluster.extra
    return GatewayChaosReport(
        schedule=schedule.spec(),
        seed=seed,
        clean_profit=clean.total_profit,
        chaos_profit=chaos.total_profit,
        audit=audit,
        faults_fired=len(injector.fired),
        recoveries=len(chaos.cluster.recoveries),
        supervision_events=len(extra.get("supervision_events", [])),
        degraded_shards=len(extra.get("degraded_shards", [])),
        retried=chaos.retried,
        clean_fingerprint=clean.fingerprint(),
        chaos_fingerprint=chaos.fingerprint(),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CI smoke entry point: one seeded schedule, exit 0 iff ``ok``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Chaos-inject a resilient cluster and verify "
        "bit-identity with the fault-free run.",
    )
    parser.add_argument("--seed", type=int, default=1, help="schedule seed")
    parser.add_argument("--n-jobs", type=int, default=120)
    parser.add_argument("--m", type=int, default=8, help="total machines")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--mode", choices=("inprocess", "process"), default="inprocess"
    )
    parser.add_argument(
        "--kinds",
        default=",".join(FAULT_KINDS),
        help="comma-separated fault kinds to draw from",
    )
    parser.add_argument("--events", type=int, default=3)
    parser.add_argument(
        "--schedule", default=None, help="explicit kind:shard:at,... spec"
    )
    parser.add_argument("--out", default=None, help="write the report JSON here")
    parser.add_argument(
        "--gateway", action="store_true",
        help="run the end-to-end gateway chaos gate instead: virtual "
        "clock, coordinated supervised elastic cluster, autoscaling, "
        "retrying ingest; exit 0 iff the invariant audit passes",
    )
    parser.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="run this scenario spec (.toml/.json) instead of the flags",
    )
    parser.add_argument(
        "--dump-scenario", action="store_true",
        help="print the chaos-injected run as a canonical scenario TOML "
        "and exit (the clean reference run is this CLI's own job)",
    )
    args = parser.parse_args(argv)
    if args.gateway:
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
        with tempfile.TemporaryDirectory(prefix="repro-chaos-gw-") as workdir:
            report = run_gateway_chaos(
                seed=args.seed,
                schedule=(
                    ChaosSchedule.parse(args.schedule)
                    if args.schedule
                    else None
                ),
                n_jobs=args.n_jobs,
                m=args.m,
                k_max=max(2, args.shards),
                n_events=args.events,
                kinds=kinds,
                workdir=workdir,
            )
        payload = report.to_dict()
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2)
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0 if report.ok else 1
    if args.scenario:
        from repro.scenarios.cli import main as scenario_main

        return scenario_main(["run", args.scenario])
    if args.dump_scenario:
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec.from_dict(
            {
                "scenario": {
                    "name": "chaos-smoke",
                    "mode": "cluster",
                    "seed": args.seed,
                },
                "workload": {
                    "n_jobs": args.n_jobs,
                    "m": args.m,
                    "load": 2.0,
                    "epsilon": 1.0,
                },
                "cluster": {
                    "shards": args.shards,
                    "mode": args.mode,
                    "supervise": True,
                },
                "faults": {
                    "kind": "chaos",
                    "chaos": args.schedule or f"seed:{args.seed}",
                },
            }
        )
        sys.stdout.write(spec.to_toml())
        return 0

    from repro.workloads import WorkloadConfig, generate_workload

    specs = generate_workload(
        WorkloadConfig(
            n_jobs=args.n_jobs, m=args.m, load=2.0, epsilon=1.0, seed=args.seed
        )
    )
    horizon = max(spec.arrival for spec in specs) or 1
    if args.schedule:
        schedule = ChaosSchedule.parse(args.schedule)
    else:
        schedule = ChaosSchedule.generate(
            args.seed,
            k=args.shards,
            horizon=horizon,
            n_events=args.events,
            kinds=[k.strip() for k in args.kinds.split(",") if k.strip()],
        )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        report = run_chaos(
            specs,
            m=args.m,
            k=args.shards,
            schedule=schedule,
            mode=args.mode,
            workdir=workdir,
        )
    payload = report.to_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    json.dump(payload, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
