"""Supervised elastic cluster: live resizing over the resilience stack.

:class:`SupervisedElasticCluster` composes the two orthogonal cluster
extensions -- :class:`~repro.cluster.elastic.ElasticScalingMixin`
(live-resizable active shard prefix) over
:class:`~repro.resilience.cluster.ResilientClusterService` (WALs,
checkpoints, supervisor, breakers, steal journal) -- so elastic scaling
and supervised fault recovery hold *simultaneously*:

* scale-time job moves (the scale-up split, the scale-down drain) are
  WAL-logged under idempotency keys and followed by a cluster
  checkpoint, so a supervised restart mid-resize replays every moved
  job exactly once and resurrects none;
* the scale-down drain routes over the *healthy* remaining prefix only
  (dead and degraded shards are filtered, positionally reindexed the
  way the circuit-breaker router does), and skips the drain entirely
  when the victim itself is down -- its jobs ride the lame duck through
  supervised recovery instead of being stranded;
* the supervisor heartbeats every *activated* unit (lame ducks
  included, dormant never-started units excluded via
  ``supervised_shard_ids``), so a crashed lame duck still recovers and
  drains at finish;
* the steal journal's recovery reconciliation sees the elastic shard
  set through the same interface, so transactional steals stay
  exactly-once across resizes.

Method resolution order is the composition contract: the mixin supplies
scaling/stats/prefix behaviour, the resilient base supplies delivery,
checkpointing, supervision and the finish-drain policy, and the shared
hook seams in :class:`~repro.cluster.service.ClusterService` keep them
from trampling each other.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.cluster.config import ShardConfig
from repro.cluster.elastic import ElasticScalingMixin, validate_elastic
from repro.cluster.router import Router
from repro.resilience.breaker import BreakerConfig
from repro.resilience.cluster import ResilientClusterService
from repro.resilience.rpc import DEFAULT_RPC_POLICY, RpcPolicy
from repro.resilience.supervisor import ShardSupervisor, SupervisorConfig


class SupervisedElasticCluster(ElasticScalingMixin, ResilientClusterService):
    """Elastic shard prefix with supervised recovery and durable moves.

    Parameters
    ----------
    m, k_max, k_initial:
        As for :class:`~repro.cluster.elastic.ElasticCluster` (``m``
        must split evenly into ``k_max`` fixed-size units).
    config, router, mode, stats_refresh, supervisor, breaker, rpc,
    wal_dir, checkpoint_dir, checkpoint_keep, wal_fsync_every,
    checkpoint_every, fault_injector, tracer:
        As for :class:`~repro.resilience.cluster.
        ResilientClusterService`.
    """

    def __init__(
        self,
        m: int,
        k_max: int,
        *,
        k_initial: Optional[int] = None,
        config: Optional[ShardConfig] = None,
        router: Union[Router, str] = "least-loaded",
        mode: str = "inprocess",
        stats_refresh: int = 32,
        checkpoint_every: Optional[int] = None,
        fault_injector: Optional[Any] = None,
        supervisor: Union[ShardSupervisor, SupervisorConfig, None] = None,
        breaker: Optional[BreakerConfig] = None,
        rpc: Optional[RpcPolicy] = DEFAULT_RPC_POLICY,
        wal_dir: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_keep: int = 2,
        wal_fsync_every: int = 8,
        tracer: Optional[Any] = None,
    ) -> None:
        k_initial = validate_elastic(m, k_max, k_initial)
        super().__init__(
            m,
            k_max,
            config=config,
            router=router,
            mode=mode,
            checkpoint_every=checkpoint_every,
            fault_injector=fault_injector,
            stats_refresh=stats_refresh,
            supervisor=supervisor,
            breaker=breaker,
            rpc=rpc,
            wal_dir=wal_dir,
            checkpoint_dir=checkpoint_dir,
            checkpoint_keep=checkpoint_keep,
            wal_fsync_every=wal_fsync_every,
            tracer=tracer,
        )
        self._init_elastic(m, k_max, k_initial)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SupervisedElasticCluster(m={self.m}, k_max={self.k}, "
            f"k_active={self.k_active}, "
            f"degraded={sorted(self.supervisor.degraded)})"
        )
