"""Durable write-ahead log for shard submissions.

The cluster's in-memory :class:`~repro.service.replay.SubmissionLog`
is the recovery source of truth -- which makes it a single point of
loss: a fault that takes the *parent* process down loses every
submission with it, and a fault that lands mid-write leaves a torn
record that naive replay would choke on.  :class:`WriteAheadLog` is the
durable replacement: an append-only binary file of length-prefixed,
CRC32-checksummed records, fsynced in batches, that truncates a torn
tail on open so recovery is correct even when the crash landed halfway
through a write.

Byte layout (see docs/RESILIENCE.md for the full table)::

    file   := magic records*
    magic  := b"RWAL0001"                      (8 bytes)
    record := length crc32 payload
    length := uint32 little-endian             (payload bytes)
    crc32  := uint32 little-endian             (zlib.crc32 of payload)
    payload:= UTF-8 JSON {"t": int, "spec": {...}}

A record is *valid* iff its full frame is present and the CRC matches.
On open, the log scans forward from the magic and keeps the longest
valid prefix; anything after the first invalid frame is a torn tail --
the bytes a crash cut short -- and is truncated away.  Replay of the
surviving prefix plus idempotent re-submission (keys are assigned per
log position, see :meth:`key_for`) makes recovery exactly-once.

The class duck-types ``SubmissionLog`` (``record`` / ``entries`` /
``__len__`` / ``__iter__``), so :class:`~repro.cluster.service.
ClusterService` can use either interchangeably.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Iterator, Union

from repro.errors import WALError
from repro.sim.jobs import JobSpec
from repro.workloads.serialize import spec_from_dict, spec_to_dict

#: File magic: format name + version.  Bump the digits on layout change.
WAL_MAGIC = b"RWAL0001"

#: ``<length:uint32><crc32:uint32>`` little-endian frame header.
_FRAME = struct.Struct("<II")


def pack_frame(payload: bytes) -> bytes:
    """Frame ``payload`` as ``<length><crc32><payload>`` bytes."""
    return _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def scan_frames(data: bytes, magic: bytes, path: str) -> tuple[list[bytes], int]:
    """Longest valid frame prefix of ``data``.

    Returns the decoded payloads and the byte offset of the first
    invalid frame (``len(data)`` when the file is clean); bytes past the
    offset are a torn tail the caller should truncate.  Shared by the
    submission WAL and the steal-transaction journal, which differ only
    in magic and payload schema.
    """
    if not data.startswith(magic):
        raise WALError(f"{path} has wrong magic (expected {magic!r})")
    payloads: list[bytes] = []
    good = len(magic)
    while True:
        header = data[good : good + _FRAME.size]
        if len(header) < _FRAME.size:
            break
        length, crc = _FRAME.unpack(header)
        start = good + _FRAME.size
        payload = data[start : start + length]
        if len(payload) < length or zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        payloads.append(payload)
        good = start + length
    return payloads, good


class WriteAheadLog:
    """Append-only durable submission log with torn-tail recovery.

    Parameters
    ----------
    path:
        The log file.  An existing file is scanned and its valid prefix
        loaded (torn tail truncated); a missing file is created.
    fsync_every:
        Records between fsyncs (batch durability).  1 fsyncs every
        record; the default 8 amortizes the syscall at the cost of at
        most 7 records on power loss -- records the *cluster* still
        holds in memory, so only a parent-process fault can lose them.
    """

    def __init__(self, path: Union[str, os.PathLike], *, fsync_every: int = 8) -> None:
        if fsync_every < 1:
            raise WALError("fsync_every must be >= 1")
        self.path = str(path)
        self.fsync_every = int(fsync_every)
        #: in-memory mirror of the durable records, ``(t, spec)`` pairs
        self.entries: list[tuple[int, JobSpec]] = []
        #: bytes cut off the tail when the file was opened (0 = clean)
        self.truncated_bytes = 0
        self._pending = 0
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            self._recover()
            self._fh = open(self.path, "ab")
        else:
            self._fh = open(self.path, "wb")
            self._fh.write(WAL_MAGIC)
            self._fh.flush()
            os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    # SubmissionLog interface
    # ------------------------------------------------------------------
    def record(self, t: int, spec: JobSpec) -> int:
        """Append one submission durably; returns its log index."""
        payload = json.dumps(
            {"t": int(t), "spec": spec_to_dict(spec)}, separators=(",", ":")
        ).encode("utf-8")
        self._fh.write(pack_frame(payload))
        self.entries.append((int(t), spec))
        self._pending += 1
        if self._pending >= self.fsync_every:
            self.sync()
        return len(self.entries) - 1

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[int, JobSpec]]:
        return iter(self.entries)

    def key_for(self, index: int) -> str:
        """Idempotency key of the record at ``index`` (stable across
        replays: a function of log position alone)."""
        return str(index)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush buffered records to the OS and fsync the file."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._pending = 0

    def close(self) -> None:
        """Sync and close the underlying file (idempotent)."""
        if self._fh.closed:
            return
        self.sync()
        self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Load the longest valid record prefix; truncate the rest."""
        with open(self.path, "rb") as fh:
            data = fh.read()
        payloads, good = scan_frames(data, WAL_MAGIC, self.path)
        for payload in payloads:
            entry = json.loads(payload.decode("utf-8"))
            self.entries.append((int(entry["t"]), spec_from_dict(entry["spec"])))
        if good < len(data):
            self.truncated_bytes = len(data) - good
            with open(self.path, "r+b") as fh:
                fh.truncate(good)
                fh.flush()
                os.fsync(fh.fileno())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({self.path!r}, entries={len(self.entries)}, "
            f"truncated={self.truncated_bytes})"
        )


def open_wal(path: Union[str, os.PathLike], *, fsync_every: int = 8) -> WriteAheadLog:
    """Open (or create) a WAL, recovering a torn tail if present."""
    return WriteAheadLog(path, fsync_every=fsync_every)
