"""The resilient cluster: supervised shards behind circuit breakers.

:class:`ResilientClusterService` is :class:`~repro.cluster.service.
ClusterService` with the full resilience stack wired through it:

* every shard RPC is bounded by an :class:`~repro.resilience.rpc.
  RpcPolicy` (deadlines, bounded retries, at-most-once execution);
* submissions are always logged -- durably, when ``wal_dir`` is given,
  through :class:`~repro.resilience.wal.WriteAheadLog` -- and carry
  idempotency keys derived from their log position;
* a :class:`~repro.resilience.supervisor.ShardSupervisor` heartbeats
  the shards and restarts crashed or hung ones from the latest
  checkpoint plus a keyed log-tail replay, under an exponential-backoff
  restart budget;
* checkpoints persist through a digest-verified
  :class:`~repro.resilience.checkpoints.CheckpointStore` when
  ``checkpoint_dir`` is given, with automatic fallback to the previous
  generation on corruption;
* routing goes through a :class:`~repro.resilience.breaker.
  CircuitBreakerRouter` -- a shard that keeps failing is routed around,
  and a shard whose restart budget is spent is *degraded*: forced open,
  served around, and reported as an empty shard result rather than an
  exception (``on_exhausted="degrade"``).

The invariant everything hangs on: **the log append happens before the
delivery**.  A delivery that fails mid-flight therefore loses nothing
-- supervised recovery restores the shard and replays the logged tail
under the same idempotency keys, admitting every logged job exactly
once.  The chaos suite (:mod:`repro.resilience.chaos`) pins that a
faulted run's completed records and profit are bit-identical to the
fault-free run.

The class also hosts the chaos injection surface (``inject_*``) so the
harness can trigger each fault class through one interface in both
cluster modes.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Union

from repro.cluster.config import ShardConfig
from repro.cluster.faults import FaultInjector
from repro.cluster.migration import MigrationPolicy
from repro.cluster.router import Router, ShardStats
from repro.cluster.service import ClusterResult, ClusterService
from repro.cluster.shard import InProcessShard, ProcessShard
from repro.core.theory import Constants
from repro.errors import NoHealthyShardError, ShardFailedError
from repro.resilience.breaker import BreakerConfig, CircuitBreakerRouter
from repro.resilience.checkpoints import CheckpointStore
from repro.resilience.rpc import DEFAULT_RPC_POLICY, RpcPolicy
from repro.resilience.supervisor import ShardSupervisor, SupervisorConfig
from repro.resilience.transactions import (
    StealJournal,
    reconcile_shard,
    resolve_pending,
)
from repro.resilience.wal import WriteAheadLog
from repro.service.queue import sns_density
from repro.service.service import ServiceResult, ShedRecord
from repro.service.telemetry import MetricsRegistry
from repro.sim.engine import SimulationResult
from repro.sim.jobs import JobSpec
from repro.sim.trace import RunCounters


class ResilientClusterService(ClusterService):
    """Sharded serving that survives crashes, hangs, and corruption.

    Parameters (on top of :class:`~repro.cluster.service.
    ClusterService`)
    ----------
    supervisor:
        A :class:`~repro.resilience.supervisor.ShardSupervisor`, a
        :class:`~repro.resilience.supervisor.SupervisorConfig`, or
        ``None`` for the default supervisor.
    breaker:
        Per-shard :class:`~repro.resilience.breaker.BreakerConfig`
        (default thresholds are deliberately high enough that isolated
        supervised faults never trip a breaker -- tripping is for
        *sustained* failure).
    rpc:
        :class:`~repro.resilience.rpc.RpcPolicy` applied to every
        process-mode shard (``None`` restores blocking RPC).
    wal_dir:
        Directory for per-shard durable WALs; ``None`` keeps the
        in-memory submission logs.
    checkpoint_dir:
        Directory for the digest-verified checkpoint store; ``None``
        keeps checkpoints in memory.
    """

    def __init__(
        self,
        m: int,
        k: int,
        *,
        config: Optional[ShardConfig] = None,
        router: Union[Router, str] = "consistent-hash",
        mode: str = "inprocess",
        migration: Optional[MigrationPolicy] = None,
        migrate_every: int = 0,
        fault_injector: Optional[FaultInjector] = None,
        checkpoint_every: Optional[int] = None,
        stats_refresh: int = 32,
        supervisor: Union[ShardSupervisor, SupervisorConfig, None] = None,
        breaker: Optional[BreakerConfig] = None,
        rpc: Optional[RpcPolicy] = DEFAULT_RPC_POLICY,
        wal_dir: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_keep: int = 2,
        wal_fsync_every: int = 8,
        tracer: Optional[Any] = None,
    ) -> None:
        super().__init__(
            m,
            k,
            config=config,
            router=router,
            mode=mode,
            migration=migration,
            migrate_every=migrate_every,
            fault_injector=fault_injector,
            checkpoint_every=checkpoint_every,
            stats_refresh=stats_refresh,
            tracer=tracer,
        )
        # recovery machinery is always on, injector or not
        self._log_submissions = True
        if self.checkpoint_every is None:
            self.checkpoint_every = 64
        if isinstance(supervisor, ShardSupervisor):
            self.supervisor = supervisor
        else:
            self.supervisor = ShardSupervisor(supervisor)
        self.breaker_router = CircuitBreakerRouter(self.router, breaker)
        self.router = self.breaker_router
        self.rpc = rpc
        for shard in self.shards:
            if isinstance(shard, ProcessShard):
                shard.rpc = rpc
        if wal_dir is not None:
            os.makedirs(wal_dir, exist_ok=True)
            self.logs = [
                WriteAheadLog(
                    os.path.join(wal_dir, f"shard-{i:03d}.wal"),
                    fsync_every=wal_fsync_every,
                )
                for i in range(self.k)
            ]
        self.store: Optional[CheckpointStore] = (
            CheckpointStore(checkpoint_dir, keep=checkpoint_keep)
            if checkpoint_dir is not None
            else None
        )
        #: transactional steal journal (durable beside the WALs when
        #: ``wal_dir`` is given, in-memory otherwise); always on and
        #: decision-free, so fault-free runs stay bit-identical
        self.steal_journal = StealJournal(
            os.path.join(wal_dir, "steals.txn") if wal_dir is not None else None,
            fsync_every=wal_fsync_every,
        )
        #: journal sequence at checkpoint time, keyed like the trace
        #: marks by (shard, log_index, checkpoint engine time): lets a
        #: recovery skip repairing moves the restored state already
        #: reflects (see :func:`~repro.resilience.transactions.
        #: reconcile_shard`)
        self._txn_marks: dict[tuple[int, int, int], int] = {}
        #: armed chaos state (see the injection surface below)
        self._steal_interrupt: Optional[int] = None
        self._tick_stall = 0
        #: jobs shed at the *cluster* level (no healthy shard to admit)
        self.cluster_shed: list[ShedRecord] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring the shards up and always take the initial checkpoint
        (recovery must never have to guess)."""
        if self._started:
            return
        super().start()
        if self.fault_injector is None:
            self.checkpoint_all()

    def submit(self, spec: JobSpec, t: Optional[int] = None) -> int:
        """Route one job; shed it cluster-side when no shard is healthy.

        Returns the chosen shard index, or ``-1`` for a cluster-level
        shed (recorded in :attr:`cluster_shed`).  Shedding follows the
        paper's ordering implicitly: per-shard queues configured with
        ``reject-lowest-density`` drop the least dense jobs first as
        surviving shards absorb the diverted load.
        """
        try:
            return super().submit(spec, t)
        except NoHealthyShardError:
            at = self._now if t is None else max(int(t), self._now)
            template = self.shards[0].config
            self.cluster_shed.append(
                ShedRecord(
                    job_id=spec.job_id,
                    time=at,
                    reason="no-healthy-shard",
                    density=sns_density(
                        spec,
                        template.m,
                        Constants.from_epsilon(1.0),
                        template.speed,
                    ),
                    profit=spec.profit,
                )
            )
            self.cluster_metrics.counter("cluster_shed_total").inc()
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.event(
                    at, "submit", spec.job_id, {"outcome": "cluster-shed"}
                )
                tracer.event(
                    at,
                    "cluster-shed",
                    spec.job_id,
                    {"reason": "no-healthy-shard", "profit": spec.profit},
                )
            return -1

    def advance_to(self, t: int) -> int:
        """Advance live shards, supervising any failure en route."""
        self.start()
        t = max(int(t), self._now)
        self._now = t
        self._hooks(t)
        for shard in self.shards:
            if not shard.alive or shard.index in self.supervisor.degraded:
                continue
            try:
                shard.advance_to(t)
            except ShardFailedError as exc:
                self._supervise_failure(shard.index, t, exc)
        self._stats_cache = None
        return self._now

    def _finish_shard(self, shard) -> ServiceResult:
        """Drain one shard; a degraded shard yields an empty result.

        A shard that fails during its drain gets one supervised
        recovery and a second drain attempt; if the budget is already
        spent, the degrade policy decides (empty result or raise).
        """
        if shard.index in self.supervisor.degraded:
            return self._empty_result(shard)
        try:
            return shard.finish()
        except ShardFailedError as exc:
            self._supervise_failure(shard.index, self._now, exc)
            if shard.index in self.supervisor.degraded:
                return self._empty_result(shard)
            return shard.finish()

    def _close_logs(self) -> None:
        for log in self.logs:
            close = getattr(log, "close", None)
            if close is not None:
                close()
        self.steal_journal.close()

    def _annotate_result(self, result: ClusterResult) -> None:
        super()._annotate_result(result)
        self._sweep_unresolved(result)
        result.extra["cluster_shed"] = list(self.cluster_shed)
        result.extra["supervision_events"] = list(self.supervisor.events)
        result.extra["degraded_shards"] = sorted(self.supervisor.degraded)
        result.extra["steal_txns"] = self.steal_journal.counts()

    def _sweep_unresolved(self, result: ClusterResult) -> None:
        """Close the job-conservation books at finish.

        Every logged submission must end in exactly one of completed /
        expired / shed (the invariant the chaos auditor checks).  Two
        fault paths legitimately leave a job with no terminal record:
        its shard was *degraded* out of the run (admitted work lost --
        the measured cost of degradation), or it expired *in transit*
        during a steal the journal settled as ``expired``.  Both get a
        synthesized cluster-level shed record here.  A missing job with
        neither explanation is left missing -- masking it would hide a
        real conservation bug from the auditor.
        """
        terminal: set[int] = set()
        for res in result.shard_results:
            terminal.update(res.result.records.keys())
            terminal.update(rec.job_id for rec in res.shed)
        terminal.update(rec.job_id for rec in self.cluster_shed)
        logged: dict[int, JobSpec] = {}
        for log in self.logs:
            for _, spec in log:
                logged.setdefault(spec.job_id, spec)
        missing = sorted(set(logged) - terminal)
        if not missing:
            return
        degraded = bool(self.supervisor.degraded)
        template = self.shards[0].config
        for job_id in missing:
            txn = self.steal_journal.latest_for_job(job_id)
            if txn is not None and txn.state == "expired":
                reason = "steal-expired"
            elif degraded:
                reason = "degraded-loss"
            else:
                continue
            spec = logged[job_id]
            self.cluster_shed.append(
                ShedRecord(
                    job_id=job_id,
                    time=self._now,
                    reason=reason,
                    density=sns_density(
                        spec,
                        template.m,
                        Constants.from_epsilon(1.0),
                        template.speed,
                    ),
                    profit=spec.profit,
                )
            )
            # not cluster_shed_total: that counts front-door refusals
            # at submit time; these are post-hoc book-closings
            self.cluster_metrics.counter("swept_unresolved_total").inc()

    def _empty_result(self, shard) -> ServiceResult:
        """Stand-in result for a shard degraded out of the run: its
        admitted-but-unfinished work is lost, which the throughput
        retention benchmark measures as the cost of degradation."""
        return ServiceResult(
            result=SimulationResult(
                m=shard.config.m,
                speed=shard.config.speed,
                records={},
                counters=RunCounters(),
                end_time=self._now,
            ),
            shed=[],
            metrics=MetricsRegistry(),
        )

    # ------------------------------------------------------------------
    # Supervised failure paths
    # ------------------------------------------------------------------
    def _supervise_failure(self, index: int, t: int, exc: ShardFailedError):
        """Route one caught shard failure through breaker + supervisor."""
        self.breaker_router.breaker(index).record_failure(t)
        self._stats_cache = None
        return self.supervisor.handle_failure(self, index, t, reason=exc.reason)

    def _deliver(self, index: int, spec: JobSpec, t: int, key=None) -> None:
        """Deliver one logged submission, recovering the shard on
        failure.

        No explicit re-delivery happens here: the entry is already in
        the log *before* delivery, so the supervised recovery's keyed
        tail replay admits it (exactly once) on the same shard --
        re-sending it ourselves would race the replay.
        """
        try:
            super()._deliver(index, spec, t, key=key)
            self.breaker_router.breaker(index).record_success(t)
        except ShardFailedError as exc:
            self._supervise_failure(index, t, exc)

    def checkpoint_all(self) -> None:
        """Checkpoint live shards; a shard that fails its snapshot is
        recovered (and checkpointed on the next round)."""
        for shard in self.shards:
            if not shard.alive or shard.index in self.supervisor.degraded:
                continue
            try:
                self._save_checkpoint(
                    shard.index,
                    len(self.logs[shard.index]),
                    shard.snapshot(),
                )
            except ShardFailedError as exc:
                self._supervise_failure(shard.index, self._now, exc)
        self._last_checkpoint_t = self._now
        self.cluster_metrics.counter("checkpoints_total").inc()

    def _save_checkpoint(
        self, index: int, log_index: int, snapshot: dict[str, Any]
    ) -> None:
        # remember the journal position this snapshot reflects, so a
        # restore knows which settled steals are already baked in
        self._txn_marks[
            (index, log_index, int(snapshot["engine"]["t"]))
        ] = self.steal_journal.seq
        if self.store is not None:
            self.store.save(index, log_index, snapshot)
            self._note_trace_mark(index, log_index, snapshot)
        else:
            super()._save_checkpoint(index, log_index, snapshot)

    def _load_checkpoint(self, index: int) -> tuple[int, Optional[dict[str, Any]]]:
        if self.store is not None:
            return self.store.load(index)
        return super()._load_checkpoint(index)

    def note_supervision(self, event) -> None:
        """Record one supervisor action in telemetry and the trace.

        Called by :meth:`ShardSupervisor.handle_failure` after each
        restart/degrade: bumps the per-shard restart counter, feeds the
        ``restart_seconds`` histogram, and emits a ``supervision`` trace
        event (cluster-level, so recovery truncation never drops it).
        """
        if event.action == "restart":
            self.cluster_metrics.counter(
                f"restarts_shard_{event.shard}"
            ).inc()
            self.cluster_metrics.histogram("restart_seconds").observe(
                event.restart_seconds
            )
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                event.time,
                "supervision",
                None,
                {
                    "shard": event.shard,
                    "reason": event.reason,
                    "action": event.action,
                    "restarts": event.restarts,
                },
            )

    def mark_degraded(self, index: int) -> None:
        """Take a shard permanently out of service (budget exhausted):
        force its breaker open so routing never sees it again."""
        self.breaker_router.breaker(index).force_open()
        self._stats_cache = None
        self.cluster_metrics.counter("degraded_total").inc()

    # ------------------------------------------------------------------
    # Transactional steals (see repro.resilience.transactions)
    # ------------------------------------------------------------------
    def resolve_steal_txns(self, t: int) -> list[dict]:
        """Settle every pending steal transaction to exactly-one
        placement.  Called by the coordinator at the end of each steal
        tick and by :meth:`_post_recover` after an off-tick recovery;
        a no-op while a steal tick is still executing (the tick owns
        its in-flight transactions)."""
        journal = self.steal_journal
        if journal.in_tick or not journal.pending():
            return []
        outcomes = resolve_pending(journal, self, t)
        if outcomes:
            self.cluster_metrics.counter("steal_txns_resolved_total").inc(
                len(outcomes)
            )
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                for outcome in outcomes:
                    tracer.event(t, "steal-resolve", outcome["job"], outcome)
        return outcomes

    def _post_recover(
        self, index: int, t: int, log_index: int, checkpoint_time: int
    ) -> None:
        """Reconcile a just-restored shard against the steal journal:
        discard resurrected copies of jobs that settled elsewhere,
        re-inject settled arrivals the rolled-back state lost, then
        settle any transactions the crash left in flight."""
        journal = self.steal_journal
        mark = self._txn_marks.get((index, log_index, checkpoint_time), 0)
        repairs = reconcile_shard(journal, self, index, t, since_seq=mark)
        if repairs:
            self.cluster_metrics.counter("steal_reconciles_total").inc(
                len(repairs)
            )
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                for action in repairs:
                    tracer.event(
                        t,
                        "steal-reconcile",
                        action["job"],
                        {"shard": index, "action": action["action"]},
                    )
        self.resolve_steal_txns(t)
        journal.sync()

    def _hooks(self, t: int) -> None:
        self.breaker_router.now = t
        super()._hooks(t)
        self.supervisor.tick(self, t)

    def _live_stats(self) -> list[ShardStats]:
        """Per-shard stats that tolerate a failing shard (reported as
        dead; the supervisor deals with it on its own cadence)."""
        stats = []
        for shard in self.shards:
            if not shard.alive or shard.index in self.supervisor.degraded:
                stats.append(
                    ShardStats(index=shard.index, m=shard.config.m, alive=False)
                )
                continue
            try:
                stats.append(shard.stats())
            except ShardFailedError:
                stats.append(
                    ShardStats(index=shard.index, m=shard.config.m, alive=False)
                )
        return stats

    # ------------------------------------------------------------------
    # Chaos injection surface (see repro.resilience.chaos)
    # ------------------------------------------------------------------
    def inject_crash(self, index: int) -> None:
        """Kill one shard outright; detection is the next delivery,
        fence, or heartbeat."""
        self.kill_shard(index)

    def inject_hang(self, index: int, seconds: float = 30.0) -> None:
        """Make one shard unresponsive without killing it."""
        shard = self.shards[index]
        if isinstance(shard, ProcessShard):
            shard.hang(seconds)
        elif isinstance(shard, InProcessShard):
            shard.chaos_hung = True
        self.cluster_metrics.counter("faults_total").inc()

    def inject_slow(self, index: int, seconds: float = 0.05) -> None:
        """Add latency to one shard without changing its state."""
        shard = self.shards[index]
        if isinstance(shard, ProcessShard):
            shard.hang(seconds)
        elif isinstance(shard, InProcessShard):
            shard.chaos_latency = seconds

    def inject_pipe_drop(self, index: int) -> None:
        """Sever one shard's command channel mid-run."""
        self.shards[index].drop_pipe()
        self._stats_cache = None
        self.cluster_metrics.counter("faults_total").inc()

    def inject_corrupt_checkpoint(self, index: int) -> None:
        """Corrupt the shard's newest checkpoint, then crash it, so the
        recovery path must fall back (previous generation, or an empty
        restore plus full-log replay)."""
        if self.store is not None:
            self.store.corrupt_latest(index)
        else:
            self.checkpoints.pop(index, None)
        self.kill_shard(index)

    def inject_steal_interrupt(self, index: int) -> None:
        """Arm a crash of shard ``index`` *between* the two phases of
        the next steal tick -- after the extractions, before any
        injection -- the exact window where jobs exist only in transit
        and the transaction journal is the sole source of truth."""
        self._steal_interrupt = int(index)
        self.cluster_metrics.counter("faults_total").inc()

    def consume_steal_interrupt(self) -> Optional[int]:
        """One-shot read of the armed steal interrupt (coordinator
        hook, called between extract and inject phases)."""
        target, self._steal_interrupt = self._steal_interrupt, None
        return target

    def inject_scale_during_crash(self, index: int) -> None:
        """Crash shard ``index`` and immediately drive a scale step
        while it is down, racing supervised recovery against the
        resize.  On a non-elastic cluster this degenerates to a plain
        crash."""
        self.kill_shard(index)
        if hasattr(self, "scale_to"):
            k = self.k_active
            target = k - 1 if k > 1 else k + 1
            self.scale_to(max(1, min(self.k, target)))

    def inject_ledger_partition(self, submissions: int = 8) -> None:
        """Partition the coordinator from shard state: the band ledger
        goes stale and refreshes/steals are suppressed for the next
        ``submissions`` routing decisions (degraded anchor-only
        routing)."""
        if self.coordinator is not None:
            self.coordinator.partition(submissions)
        self.cluster_metrics.counter("faults_total").inc()

    def inject_tick_stall(self, ticks: int = 1) -> None:
        """Stall the driving loop: the gateway skips dispatch+advance
        for the next ``ticks`` ticks while arrivals keep buffering
        (harmless no-op without a gateway consuming the counter)."""
        self._tick_stall += int(ticks)
        self.cluster_metrics.counter("faults_total").inc()

    def consume_tick_stall(self) -> bool:
        """One-shot per-tick read of the stall counter (gateway hook)."""
        if self._tick_stall > 0:
            self._tick_stall -= 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResilientClusterService(m={self.m}, k={self.k}, "
            f"mode={self.mode}, degraded={sorted(self.supervisor.degraded)})"
        )
