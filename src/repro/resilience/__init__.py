"""Resilient serving: supervision, breakers, durable logs, chaos.

This package hardens the sharded cluster (:mod:`repro.cluster`) for
hostile conditions while keeping the repo's core guarantee intact --
determinism.  Every mechanism here is engineered so that a faulted run
*converges back to the fault-free run bit-for-bit*: submissions are
logged before delivery, recovery replays under stable idempotency
keys, and the chaos harness (:mod:`repro.resilience.chaos`) pins the
equivalence for every core fault class.  Where bit-identity is too
strong a claim -- an elastic, autoscaled gateway under coordination
faults -- the post-run auditor (:mod:`repro.resilience.audit`)
recomputes the books and asserts the invariants that must survive any
degradation: jobs conserved, exactly-once completion, WAL-before-
deliver, steal transactions settled, profit within a gated floor.

Modules
-------
:mod:`~repro.resilience.wal`
    Durable write-ahead submission log (CRC32 frames, fsync batching,
    torn-tail truncation).
:mod:`~repro.resilience.checkpoints`
    Digest-verified generational checkpoint store with corruption
    fallback.
:mod:`~repro.resilience.rpc`
    Deadline/retry policy for shard command pipes (at-most-once sync
    RPC, idempotent submits).
:mod:`~repro.resilience.supervisor`
    Heartbeat liveness (crash *and* hang detection) with bounded,
    jittered auto-restart.
:mod:`~repro.resilience.breaker`
    Per-shard circuit breakers and the routing decorator that sheds
    traffic around open circuits.
:mod:`~repro.resilience.transactions`
    Transactional cross-shard steals: intent/transfer/commit journal
    with torn-tail recovery and exactly-one-placement replay.
:mod:`~repro.resilience.cluster`
    :class:`ResilientClusterService` -- the whole stack wired together,
    plus the chaos-injection surface.
:mod:`~repro.resilience.elastic`
    :class:`SupervisedElasticCluster` -- live resizing composed over
    the resilience stack (durable scale moves, healthy-prefix drain).
:mod:`~repro.resilience.audit`
    Post-run invariant auditing for chaos and gateway runs.
:mod:`~repro.resilience.chaos`
    Deterministic fault schedules, the identity-checking harness, and
    the audited end-to-end gateway chaos gate.
"""

from repro.resilience.audit import (
    INVARIANTS,
    AuditReport,
    AuditViolation,
    audit_run,
)
from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerRouter,
)
from repro.resilience.chaos import (
    COORDINATION_FAULT_KINDS,
    CORE_FAULT_KINDS,
    FAULT_KINDS,
    ChaosEvent,
    ChaosInjector,
    ChaosReport,
    ChaosSchedule,
    GatewayChaosReport,
    run_chaos,
    run_gateway_chaos,
)
from repro.resilience.checkpoints import CheckpointStore
from repro.resilience.cluster import ResilientClusterService
from repro.resilience.elastic import SupervisedElasticCluster
from repro.resilience.rpc import DEFAULT_RPC_POLICY, RpcPolicy
from repro.resilience.supervisor import (
    ShardSupervisor,
    SupervisionEvent,
    SupervisorConfig,
)
from repro.resilience.transactions import (
    TXN_STATES,
    StealJournal,
    StealTxn,
    reconcile_shard,
    resolve_pending,
)
from repro.resilience.wal import WAL_MAGIC, WriteAheadLog, open_wal

__all__ = [
    "INVARIANTS",
    "AuditReport",
    "AuditViolation",
    "audit_run",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerRouter",
    "COORDINATION_FAULT_KINDS",
    "CORE_FAULT_KINDS",
    "FAULT_KINDS",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosReport",
    "ChaosSchedule",
    "GatewayChaosReport",
    "run_chaos",
    "run_gateway_chaos",
    "CheckpointStore",
    "ResilientClusterService",
    "SupervisedElasticCluster",
    "DEFAULT_RPC_POLICY",
    "RpcPolicy",
    "ShardSupervisor",
    "SupervisionEvent",
    "SupervisorConfig",
    "TXN_STATES",
    "StealJournal",
    "StealTxn",
    "reconcile_shard",
    "resolve_pending",
    "WAL_MAGIC",
    "WriteAheadLog",
    "open_wal",
]
