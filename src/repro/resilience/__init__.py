"""Resilient serving: supervision, breakers, durable logs, chaos.

This package hardens the sharded cluster (:mod:`repro.cluster`) for
hostile conditions while keeping the repo's core guarantee intact --
determinism.  Every mechanism here is engineered so that a faulted run
*converges back to the fault-free run bit-for-bit*: submissions are
logged before delivery, recovery replays under stable idempotency
keys, and the chaos harness (:mod:`repro.resilience.chaos`) pins the
equivalence for every fault class.

Modules
-------
:mod:`~repro.resilience.wal`
    Durable write-ahead submission log (CRC32 frames, fsync batching,
    torn-tail truncation).
:mod:`~repro.resilience.checkpoints`
    Digest-verified generational checkpoint store with corruption
    fallback.
:mod:`~repro.resilience.rpc`
    Deadline/retry policy for shard command pipes (at-most-once sync
    RPC, idempotent submits).
:mod:`~repro.resilience.supervisor`
    Heartbeat liveness (crash *and* hang detection) with bounded,
    jittered auto-restart.
:mod:`~repro.resilience.breaker`
    Per-shard circuit breakers and the routing decorator that sheds
    traffic around open circuits.
:mod:`~repro.resilience.cluster`
    :class:`ResilientClusterService` -- the whole stack wired together,
    plus the chaos-injection surface.
:mod:`~repro.resilience.chaos`
    Deterministic fault schedules and the identity-checking harness.
"""

from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerRouter,
)
from repro.resilience.chaos import (
    FAULT_KINDS,
    ChaosEvent,
    ChaosInjector,
    ChaosReport,
    ChaosSchedule,
    run_chaos,
)
from repro.resilience.checkpoints import CheckpointStore
from repro.resilience.cluster import ResilientClusterService
from repro.resilience.rpc import DEFAULT_RPC_POLICY, RpcPolicy
from repro.resilience.supervisor import (
    ShardSupervisor,
    SupervisionEvent,
    SupervisorConfig,
)
from repro.resilience.wal import WAL_MAGIC, WriteAheadLog, open_wal

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerRouter",
    "FAULT_KINDS",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosReport",
    "ChaosSchedule",
    "run_chaos",
    "CheckpointStore",
    "ResilientClusterService",
    "DEFAULT_RPC_POLICY",
    "RpcPolicy",
    "ShardSupervisor",
    "SupervisionEvent",
    "SupervisorConfig",
    "WAL_MAGIC",
    "WriteAheadLog",
    "open_wal",
]
