"""Shard supervision: heartbeat liveness, bounded auto-restart.

PR 3's fault harness recovers a shard only when the *injector itself*
killed it -- an organic crash (worker segfault, OOM kill) or a hang
(deadlocked worker, runaway job) goes unnoticed until the next
synchronous fence blocks on it.  :class:`ShardSupervisor` closes that
gap:

* **heartbeats** -- every ``heartbeat_every`` decision points the
  supervisor pings each shard under a ``heartbeat_timeout`` deadline.
  :class:`~repro.errors.ShardFailedError` means *crash* (process dead,
  pipe broken); :class:`~repro.errors.ShardTimeoutError` means *hang*
  (alive but unresponsive) -- the deadline bounds detection latency for
  failures a crash check alone would never see;
* **supervised restart** -- a detected failure triggers the PR 3
  recovery path (checkpoint restore + keyed log-tail replay) after an
  exponential backoff with deterministic jitter, so a flapping shard
  does not spin the cluster;
* **restart budget** -- each shard gets ``max_restarts`` recoveries.
  Exhausting the budget either raises
  :class:`~repro.errors.RestartBudgetExhausted` (``on_exhausted=
  "raise"``, the CLI's structured-exit path) or *degrades*: the shard
  is marked permanently dead, its circuit is forced open, and the
  cluster serves on with the shards it still has
  (``on_exhausted="degrade"``).

Jitter is drawn from a seeded :class:`random.Random`, so supervised
runs stay reproducible -- the same fault schedule yields the same
backoff sequence.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import (
    ClusterError,
    RestartBudgetExhausted,
    ShardFailedError,
    ShardTimeoutError,
)


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for one :class:`ShardSupervisor`."""

    #: seconds a shard may take to answer a heartbeat before it is
    #: declared hung (bounds hang-detection latency)
    heartbeat_timeout: float = 0.5
    #: decision points between heartbeat rounds (1 = probe every tick)
    heartbeat_every: int = 16
    #: restarts allowed per shard before the budget is exhausted
    max_restarts: int = 5
    #: seconds slept before the first restart
    backoff_base: float = 0.01
    #: cap on the per-restart backoff
    backoff_max: float = 0.5
    #: jitter fraction: the backoff is scaled by ``1 + U(0, jitter)``
    jitter: float = 0.25
    #: seed for the jitter stream (determinism)
    seed: int = 0
    #: ``"raise"`` (propagate RestartBudgetExhausted) or ``"degrade"``
    #: (mark the shard dead and serve on without it)
    on_exhausted: str = "raise"

    def __post_init__(self) -> None:
        if self.heartbeat_every < 1:
            raise ClusterError("heartbeat_every must be >= 1")
        if self.max_restarts < 0:
            raise ClusterError("max_restarts must be >= 0")
        if self.on_exhausted not in ("raise", "degrade"):
            raise ClusterError(
                f"on_exhausted must be 'raise' or 'degrade', "
                f"got {self.on_exhausted!r}"
            )


@dataclass(frozen=True)
class SupervisionEvent:
    """One supervised failure-handling action, for reports and tests."""

    shard: int
    #: simulated cluster time the failure was handled at
    time: int
    #: failure class: ``"crash"`` or ``"hang"``
    reason: str
    #: ``"restart"`` or ``"degrade"``
    action: str
    #: restarts this shard has consumed *including* this one
    restarts: int
    #: wall seconds from probe start to failure classification
    detection_seconds: float
    #: wall seconds the recovery (restore + replay) took
    restart_seconds: float
    #: wall seconds slept before restarting (backoff + jitter)
    backoff_seconds: float


class ShardSupervisor:
    """Watches a cluster's shards and restarts the ones that fail.

    The supervisor is driven from the cluster's decision-point hooks
    (:meth:`tick`) and from delivery failures the resilient cluster
    catches in-line (:meth:`handle_failure`); it owns the restart
    budget and the backoff/jitter policy, while the *mechanics* of
    recovery stay in :meth:`ClusterService.recover_shard`.
    """

    def __init__(self, config: Optional[SupervisorConfig] = None) -> None:
        self.config = config if config is not None else SupervisorConfig()
        #: restarts consumed per shard index
        self.restarts: dict[int, int] = {}
        #: shards degraded out of service (budget exhausted)
        self.degraded: set[int] = set()
        #: every handled failure, in order
        self.events: list[SupervisionEvent] = []
        self._rng = random.Random(self.config.seed)
        self._ticks = 0

    # ------------------------------------------------------------------
    def tick(self, cluster, t: int) -> list[SupervisionEvent]:
        """One decision-point tick: heartbeat shards on cadence.

        Returns the supervision events this tick produced (empty off
        cadence or when everything is healthy).
        """
        self._ticks += 1
        if self._ticks % self.config.heartbeat_every != 0:
            return []
        # elastic clusters expose which units to watch (activated ones,
        # lame ducks included); a dormant never-started unit would fail
        # every ping by design and must not be "restarted"
        ids = getattr(cluster, "supervised_shard_ids", None)
        watched = None if ids is None else set(ids())
        handled = []
        for shard in cluster.shards:
            if shard.index in self.degraded:
                continue
            if watched is not None and shard.index not in watched:
                continue
            probe_started = time.perf_counter()
            try:
                shard.ping(self.config.heartbeat_timeout)
            except (ShardTimeoutError, ShardFailedError) as exc:
                handled.append(
                    self.handle_failure(
                        cluster,
                        shard.index,
                        t,
                        reason=exc.reason,
                        detection=time.perf_counter() - probe_started,
                    )
                )
        return handled

    def handle_failure(
        self,
        cluster,
        index: int,
        t: int,
        *,
        reason: str,
        detection: float = 0.0,
    ) -> SupervisionEvent:
        """Recover one failed shard (or degrade it, budget permitting).

        Raises :class:`~repro.errors.RestartBudgetExhausted` when the
        budget is spent and the policy is ``"raise"``.
        """
        spent = self.restarts.get(index, 0)
        if spent >= self.config.max_restarts:
            return self._exhaust(cluster, index, t, reason, detection)
        self.restarts[index] = spent + 1
        backoff = min(
            self.config.backoff_max, self.config.backoff_base * (2**spent)
        )
        backoff *= 1.0 + self._rng.random() * self.config.jitter
        time.sleep(backoff)
        restart_started = time.perf_counter()
        # a hung/half-dead worker must be torn down before restore;
        # kill() is idempotent on an already-dead shard
        cluster.shards[index].kill()
        cluster.recover_shard(index, t)
        event = SupervisionEvent(
            shard=index,
            time=t,
            reason=reason,
            action="restart",
            restarts=spent + 1,
            detection_seconds=detection,
            restart_seconds=time.perf_counter() - restart_started,
            backoff_seconds=backoff,
        )
        self.events.append(event)
        self._notify(cluster, event)
        return event

    def _exhaust(
        self, cluster, index: int, t: int, reason: str, detection: float
    ) -> SupervisionEvent:
        spent = self.restarts.get(index, 0)
        if self.config.on_exhausted == "raise":
            log_index, snapshot = cluster._load_checkpoint(index)
            checkpoint_time = (
                0 if snapshot is None else int(snapshot["engine"]["t"])
            )
            raise RestartBudgetExhausted(
                f"shard {index} failed ({reason}) after {spent} restarts; "
                f"budget {self.config.max_restarts} exhausted",
                shard=index,
                fault=reason,
                restarts=spent,
                last_checkpoint_time=checkpoint_time,
                last_checkpoint_log_index=log_index,
            )
        self.degraded.add(index)
        cluster.shards[index].kill()
        cluster.mark_degraded(index)
        event = SupervisionEvent(
            shard=index,
            time=t,
            reason=reason,
            action="degrade",
            restarts=spent,
            detection_seconds=detection,
            restart_seconds=0.0,
            backoff_seconds=0.0,
        )
        self.events.append(event)
        self._notify(cluster, event)
        return event

    @staticmethod
    def _notify(cluster, event: SupervisionEvent) -> None:
        """Report one handled failure back to the cluster, when it
        exposes ``note_supervision`` (telemetry + trace hooks)."""
        notify = getattr(cluster, "note_supervision", None)
        if notify is not None:
            notify(event)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardSupervisor(restarts={dict(self.restarts)}, "
            f"degraded={sorted(self.degraded)})"
        )
