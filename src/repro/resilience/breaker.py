"""Circuit breakers over shard routing: trip, probe, re-route.

A shard that keeps failing (or keeps answering slowly) should stop
receiving traffic *before* every submission has to discover the
failure for itself.  Each shard gets a :class:`CircuitBreaker` with the
classic three states:

* **CLOSED** -- healthy; requests flow.  ``failure_threshold``
  consecutive failures (or a heartbeat latency above
  ``latency_threshold``) trip the breaker.
* **OPEN** -- tripped; the router routes around the shard.  After
  ``cooldown`` simulated time units the breaker lets one probe through.
* **HALF_OPEN** -- probing; ``half_open_successes`` consecutive
  successes re-close the breaker, any failure re-opens it.

:class:`CircuitBreakerRouter` wraps any inner
:class:`~repro.cluster.router.Router`: shards whose breaker disallows
traffic are filtered out of the stats list (re-indexed positionally so
positional routers keep working) and the inner router picks among the
rest.  Degradation follows the paper's density ordering: when capacity
shrinks, each shard's own shed policy drops its lowest-density queued
jobs first (``reject-lowest-density``), so the *least valuable* work
is shed -- the cluster analogue of scheduler S preferring high
``v_i = p_i / (x_i n_i)`` jobs.

Note the filter keys on *breaker state only*, not on ``shard.alive``:
a crashed-but-recoverable shard keeps its placements (delivery fails,
the supervisor restores it, the replay admits the job on the same
shard), which preserves routing bit-identity with the fault-free run.
Only a breaker forced open by degradation -- or tripped by sustained
failures -- diverts traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster.router import Router, ShardStats
from repro.errors import ClusterError, NoHealthyShardError
from repro.sim.jobs import JobSpec


class BreakerState(enum.Enum):
    """The three circuit states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recover thresholds for one shard's breaker."""

    #: consecutive failures that trip a CLOSED breaker
    failure_threshold: int = 3
    #: heartbeat latency (seconds) counted as a failure; ``None`` = off
    latency_threshold: Optional[float] = None
    #: simulated time units an OPEN breaker waits before HALF_OPEN
    cooldown: int = 128
    #: consecutive HALF_OPEN successes that re-close the breaker
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ClusterError("failure_threshold must be >= 1")
        if self.half_open_successes < 1:
            raise ClusterError("half_open_successes must be >= 1")


class CircuitBreaker:
    """Per-shard failure accounting with the three-state protocol."""

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.half_open_successes = 0
        #: simulated time the breaker tripped (for the cooldown clock)
        self.opened_at: Optional[int] = None
        #: a forced-open breaker never half-opens (degraded shard)
        self.forced = False
        self.trips = 0

    def allow(self, now: int) -> bool:
        """May traffic reach this shard at simulated time ``now``?

        An OPEN breaker past its cooldown transitions to HALF_OPEN and
        admits the probe.
        """
        if self.forced:
            return False
        if self.state is BreakerState.OPEN:
            if (
                self.opened_at is not None
                and now - self.opened_at >= self.config.cooldown
            ):
                self.state = BreakerState.HALF_OPEN
                self.half_open_successes = 0
                return True
            return False
        return True

    def record_success(self, now: int, latency: float = 0.0) -> None:
        """Account one successful interaction (delivery or heartbeat)."""
        if (
            self.config.latency_threshold is not None
            and latency > self.config.latency_threshold
        ):
            self.record_failure(now)
            return
        if self.state is BreakerState.HALF_OPEN:
            self.half_open_successes += 1
            if self.half_open_successes >= self.config.half_open_successes:
                self.state = BreakerState.CLOSED
                self.consecutive_failures = 0
                self.opened_at = None
        else:
            self.consecutive_failures = 0

    def record_failure(self, now: int) -> None:
        """Account one failure; trips the breaker at the threshold (a
        HALF_OPEN probe failure re-opens immediately)."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.trips += 1

    def force_open(self) -> None:
        """Latch the breaker open permanently (degraded shard)."""
        self.forced = True
        if self.state is not BreakerState.OPEN:
            self.state = BreakerState.OPEN
            self.trips += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker({self.state.value}, "
            f"failures={self.consecutive_failures}, forced={self.forced})"
        )


class CircuitBreakerRouter(Router):
    """Router decorator: route with ``inner``, skipping open circuits.

    The cluster sets :attr:`now` from its clock each decision point so
    cooldowns run on simulated time.  When every breaker is open the
    router raises :class:`~repro.errors.NoHealthyShardError` -- the
    resilient cluster turns that into a cluster-level shed rather than
    an admission.
    """

    def __init__(
        self, inner: Router, config: Optional[BreakerConfig] = None
    ) -> None:
        self.inner = inner
        self.config = config if config is not None else BreakerConfig()
        self.name = f"breaker({inner.name})"
        self.needs_stats = getattr(inner, "needs_stats", True)
        self.breakers: dict[int, CircuitBreaker] = {}
        #: simulated time, set by the cluster before each route
        self.now = 0

    def breaker(self, index: int) -> CircuitBreaker:
        """The breaker guarding shard ``index`` (created lazily)."""
        if index not in self.breakers:
            self.breakers[index] = CircuitBreaker(self.config)
        return self.breakers[index]

    def route(self, spec: JobSpec, stats: list[ShardStats]) -> int:
        healthy = [s for s in stats if self.breaker(s.index).allow(self.now)]
        if not healthy:
            raise NoHealthyShardError(
                f"all {len(stats)} shard breakers are open at t={self.now}"
            )
        if len(healthy) == len(stats):
            return self.inner.route(spec, stats)
        # positional routers (consistent-hash, round-robin) index into
        # the list they are given, so re-index the healthy subset and
        # map the pick back to the real shard index
        reindexed = [
            replace(s, index=pos) for pos, s in enumerate(healthy)
        ]
        pos = self.inner.route(spec, reindexed)
        if not 0 <= pos < len(healthy):
            raise ClusterError(
                f"inner router returned {pos} over {len(healthy)} shards"
            )
        return healthy[pos].index

    def reset(self) -> None:
        self.inner.reset()
        self.breakers.clear()
        self.now = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        open_count = sum(
            1
            for b in self.breakers.values()
            if b.state is not BreakerState.CLOSED
        )
        return f"CircuitBreakerRouter({self.inner!r}, open={open_count})"
