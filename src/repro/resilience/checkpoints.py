"""Digest-verified, generational checkpoint store for cluster shards.

PR 3's recovery restores a shard from its *latest* checkpoint -- held
as a live dict in the parent process and, on disk, written without any
integrity check.  A fault that lands mid-write (or bit rot on the
checkpoint file) would therefore surface as a JSON parse error *inside
recovery*, the worst possible moment.  :class:`CheckpointStore` fixes
both failure modes:

* every checkpoint file embeds a SHA-256 digest of its body, written
  atomically (temp file + fsync + ``os.replace`` + directory fsync);
* the store keeps the last ``keep`` generations per shard, and
  :meth:`load` walks them newest-first, *skipping* any generation whose
  digest does not match -- recovery falls back to the previous good
  checkpoint (and ultimately to an empty service plus a full WAL
  replay) instead of raising mid-recovery.

File layout: ``shard-NNN.genGGGGGG.ckpt`` containing one header line
``sha256:<hex>\\n`` followed by the body -- a JSON document
``{"log_index": int, "snapshot": {...}}``.  The digest covers the raw
body bytes exactly as written, so verification needs no JSON
canonicalization.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Any, Optional

_NAME = re.compile(r"^shard-(\d+)\.gen(\d+)\.ckpt$")


def _fsync_dir(path: str) -> None:
    """Fsync a directory so a rename into it survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


class CheckpointStore:
    """Durable per-shard checkpoints with digest fallback.

    Parameters
    ----------
    root:
        Directory the checkpoint files live in (created if missing).
    keep:
        Generations retained per shard; older ones are deleted after a
        successful save.  Must be >= 2 for corruption fallback to have
        somewhere to fall back *to*.
    """

    def __init__(self, root: str, *, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = str(root)
        self.keep = int(keep)
        #: digest mismatches (or unreadable files) skipped by :meth:`load`
        self.corrupt_detected = 0
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def _generations(self, shard: int) -> list[tuple[int, str]]:
        """``(gen, path)`` pairs for one shard, oldest first."""
        found = []
        for name in os.listdir(self.root):
            match = _NAME.match(name)
            if match and int(match.group(1)) == shard:
                found.append((int(match.group(2)), os.path.join(self.root, name)))
        found.sort()
        return found

    def _path(self, shard: int, gen: int) -> str:
        return os.path.join(self.root, f"shard-{shard:03d}.gen{gen:06d}.ckpt")

    # ------------------------------------------------------------------
    def save(self, shard: int, log_index: int, snapshot: dict[str, Any]) -> str:
        """Write one checkpoint generation durably; returns its path."""
        body = json.dumps(
            {"log_index": int(log_index), "snapshot": snapshot},
            separators=(",", ":"),
        ).encode("utf-8")
        digest = hashlib.sha256(body).hexdigest()
        gens = self._generations(shard)
        gen = gens[-1][0] + 1 if gens else 0
        path = self._path(shard, gen)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(b"sha256:" + digest.encode("ascii") + b"\n")
                fh.write(body)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(self.root)
        for _, old in self._generations(shard)[: -self.keep]:
            try:
                os.unlink(old)
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return path

    def load(self, shard: int) -> tuple[int, Optional[dict[str, Any]]]:
        """Newest checkpoint whose digest verifies, as
        ``(log_index, snapshot)``.

        Falls back generation by generation on digest mismatch or an
        unreadable file; returns ``(0, None)`` -- restart empty and
        replay the whole WAL -- when no generation survives.
        """
        for _, path in reversed(self._generations(shard)):
            entry = self._read(path)
            if entry is None:
                self.corrupt_detected += 1
                continue
            return entry
        return 0, None

    @staticmethod
    def _read(path: str) -> Optional[tuple[int, dict[str, Any]]]:
        try:
            with open(path, "rb") as fh:
                header = fh.readline()
                body = fh.read()
            if not header.startswith(b"sha256:"):
                return None
            digest = header[len(b"sha256:") :].strip().decode("ascii")
            if hashlib.sha256(body).hexdigest() != digest:
                return None
            doc = json.loads(body.decode("utf-8"))
            return int(doc["log_index"]), doc["snapshot"]
        except (OSError, ValueError, KeyError, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------------
    def corrupt_latest(self, shard: int, *, nbytes: int = 16) -> Optional[str]:
        """Flip bytes in the middle of the newest generation (chaos
        injection); returns the corrupted path, or ``None`` if the
        shard has no checkpoint on disk."""
        gens = self._generations(shard)
        if not gens:
            return None
        path = gens[-1][1]
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(max(0, size // 2))
            fh.write(b"\xde\xad" * (nbytes // 2))
            fh.flush()
            os.fsync(fh.fileno())
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({self.root!r}, keep={self.keep})"
