"""RPC discipline for shard command pipes: deadlines, retries, keys.

PR 3's :class:`~repro.cluster.shard.ProcessShard` blocks forever on a
synchronous reply -- a hung worker hangs the whole cluster.  The
resilient stack bounds every wait:

* **per-call deadlines** -- each synchronous command polls the pipe up
  to ``call_timeout`` seconds (``finish_timeout`` for the drain, which
  legitimately takes long) and raises
  :class:`~repro.errors.ShardTimeoutError` on expiry;
* **bounded retries with backoff** -- a timed-out call is re-sent up to
  ``retries`` times.  Sync commands are sequence-tagged and the worker
  caches its last reply, so a retry of a call the worker *did* execute
  returns the cached reply instead of executing twice (at-most-once
  semantics);
* **idempotency keys on submit** -- every logged submission carries a
  key derived from its log position; the worker skips keys it has
  already applied, so a replayed or re-sent batch never double-admits.

:class:`RpcPolicy` is the knob bundle; ``None`` on a shard handle
means the pre-resilience blocking behaviour (no deadline, no retry),
which the deterministic cluster pins rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RpcPolicy:
    """Deadline/retry discipline for one shard's synchronous RPCs."""

    #: seconds to wait for a sync reply (``None`` blocks forever)
    call_timeout: Optional[float] = 5.0
    #: seconds to wait for the ``finish`` drain specifically
    finish_timeout: Optional[float] = 120.0
    #: re-sends after the first timeout (0 = fail on first expiry)
    retries: int = 1
    #: seconds slept before the first retry
    backoff_base: float = 0.01
    #: cap on the per-retry backoff
    backoff_max: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise ValueError("call_timeout must be positive or None")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), exponential."""
        return min(self.backoff_max, self.backoff_base * (2**attempt))


#: Policy the resilient cluster applies to worker shards by default.
DEFAULT_RPC_POLICY = RpcPolicy()
