"""Post-run invariant auditing for chaos and gateway runs.

The chaos harness (:mod:`repro.resilience.chaos`) pins *bit-identity*
for supervised cluster runs, but a degraded or elastic run is allowed
to differ from the fault-free one -- jobs may be shed, retried, or
lost with a shard that spent its restart budget.  What must **never**
vary is the accounting.  :func:`audit_run` replays a finished run's
books and asserts the invariants the resilience stack promises even
while degraded:

``conservation``
    Every submitted job ends in *exactly one* terminal state --
    a completion record (completed or expired in place), a shard-level
    shed, a cluster-level shed, or a gateway front-door drop.  Zero
    terminal states is a lost job; two is a duplicate.
``exactly-once``
    No job completes on more than one shard (a resurrected WAL replay
    or a mis-reconciled steal would show up here).
``wal-before-deliver``
    Every job that reached a scheduler is present in some shard's
    durable WAL -- the append-before-deliver ordering that makes
    recovery replay sound (checked when the run kept durable WALs).
``txn-settled``
    No steal transaction is left pending (``intent``/``transfer``)
    once the run has drained: every in-flight move was resolved to a
    commit, an abort, or a recorded expiry.
``profit-floor``
    The faulted run retained at least ``profit_floor`` of the
    fault-free baseline's profit (checked when a baseline is given).

The auditor is deliberately dumb: it recomputes everything from the
result object (and the WAL files on disk), trusting no counter the run
maintained about itself.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from glob import glob
from os.path import join
from typing import Any, Optional, Sequence, Union

from repro.cluster.service import ClusterResult
from repro.resilience.wal import WriteAheadLog
from repro.sim.jobs import JobSpec

#: Every invariant :func:`audit_run` checks, in reporting order.
INVARIANTS = (
    "conservation",
    "exactly-once",
    "wal-before-deliver",
    "txn-settled",
    "profit-floor",
)


@dataclass(frozen=True)
class AuditViolation:
    """One broken invariant, tied to the job that broke it (if any)."""

    invariant: str
    job_id: Optional[int]
    detail: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible violation record."""
        return {
            "invariant": self.invariant,
            "job_id": self.job_id,
            "detail": self.detail,
        }


@dataclass
class AuditReport:
    """Everything :func:`audit_run` verified about one finished run."""

    submitted: int
    completed: int
    expired: int
    shed: int
    cluster_shed: int
    dropped: int
    profit: float
    baseline_profit: Optional[float]
    profit_floor: float
    violations: list[AuditViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All invariants held."""
        return not self.violations

    @property
    def profit_ratio(self) -> Optional[float]:
        """Faulted profit over baseline (``None`` without a baseline)."""
        if self.baseline_profit is None or self.baseline_profit <= 0:
            return None
        return self.profit / self.baseline_profit

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible report (the CI audit artifact)."""
        return {
            "ok": self.ok,
            "invariants": list(INVARIANTS),
            "submitted": self.submitted,
            "completed": self.completed,
            "expired": self.expired,
            "shed": self.shed,
            "cluster_shed": self.cluster_shed,
            "dropped": self.dropped,
            "profit": self.profit,
            "baseline_profit": self.baseline_profit,
            "profit_floor": self.profit_floor,
            "profit_ratio": self.profit_ratio,
            "violations": [v.to_dict() for v in self.violations],
        }

    def write(self, path: str) -> None:
        """Write the JSON report to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")


def _logged_job_ids(wal_dir: str) -> Optional[set[int]]:
    """Job ids found across every shard WAL under ``wal_dir``.

    Returns ``None`` when the directory holds no shard WALs (in-memory
    run) -- the WAL invariant is then vacuous, not violated.
    """
    paths = sorted(glob(join(wal_dir, "shard-*.wal")))
    if not paths:
        return None
    logged: set[int] = set()
    for path in paths:
        wal = WriteAheadLog(path)
        try:
            logged.update(spec.job_id for _, spec in wal)
        finally:
            wal.close()
    return logged


def audit_run(
    result: Any,
    submitted: Sequence[Union[JobSpec, int]],
    *,
    baseline_profit: Optional[float] = None,
    profit_floor: float = 0.7,
    wal_dir: Optional[str] = None,
) -> AuditReport:
    """Audit one finished run against the resilience invariants.

    Parameters
    ----------
    result:
        A :class:`~repro.cluster.service.ClusterResult` or a
        :class:`~repro.gateway.gateway.GatewayResult` (recognised by
        its ``cluster`` attribute; its front-door drops then count as
        terminal states).
    submitted:
        Every job offered to the system -- :class:`JobSpec` objects or
        bare job ids.  For a gateway run this is the *generated*
        stream, drops included.
    baseline_profit:
        Fault-free profit to hold the run against (``None`` skips the
        profit-floor check).
    profit_floor:
        Minimum retained fraction of ``baseline_profit``.
    wal_dir:
        Directory of the run's durable shard WALs; when given (and
        populated) every delivered job must appear in one.
    """
    dropped: list[Any] = []
    cluster_result: ClusterResult = result
    if hasattr(result, "cluster"):  # GatewayResult
        dropped = list(result.dropped)
        cluster_result = result.cluster

    submitted_ids = [
        spec.job_id if isinstance(spec, JobSpec) else int(spec)
        for spec in submitted
    ]
    violations: list[AuditViolation] = []

    # -- conservation: exactly one terminal state per submission -------
    terminal: Counter[int] = Counter()
    states: dict[int, list[str]] = {}

    def note(job_id: int, state: str) -> None:
        terminal[job_id] += 1
        states.setdefault(job_id, []).append(state)

    completed = expired = 0
    completions: dict[int, list[int]] = {}
    for index, res in enumerate(cluster_result.shard_results):
        for job_id, rec in res.result.records.items():
            note(job_id, "record")
            if rec.completed:
                completed += 1
                completions.setdefault(job_id, []).append(index)
            elif rec.expired:
                expired += 1
        for shed_rec in res.shed:
            note(shed_rec.job_id, "shed")

    cluster_shed = cluster_result.extra.get("cluster_shed", [])
    for shed_rec in cluster_shed:
        note(shed_rec.job_id, "cluster-shed")
    for drop in dropped:
        note(drop.job_id, f"dropped:{getattr(drop, 'reason', 'overflow')}")

    submitted_set = set(submitted_ids)
    for job_id in submitted_ids:
        n = terminal.get(job_id, 0)
        if n == 0:
            violations.append(
                AuditViolation(
                    "conservation", job_id, "no terminal state (job lost)"
                )
            )
        elif n > 1:
            violations.append(
                AuditViolation(
                    "conservation",
                    job_id,
                    f"{n} terminal states: {states[job_id]}",
                )
            )
    for job_id in sorted(set(terminal) - submitted_set):
        violations.append(
            AuditViolation(
                "conservation",
                job_id,
                f"terminal state {states[job_id]} for a job never submitted",
            )
        )

    # -- exactly-once completion across shards -------------------------
    for job_id, shards in sorted(completions.items()):
        if len(shards) > 1:
            violations.append(
                AuditViolation(
                    "exactly-once",
                    job_id,
                    f"completed on shards {shards}",
                )
            )

    # -- WAL-append-before-deliver -------------------------------------
    if wal_dir is not None:
        logged = _logged_job_ids(wal_dir)
        if logged is not None:
            for res in cluster_result.shard_results:
                for job_id in res.result.records:
                    if job_id not in logged:
                        violations.append(
                            AuditViolation(
                                "wal-before-deliver",
                                job_id,
                                "reached a scheduler but is in no WAL",
                            )
                        )

    # -- steal transactions all settled --------------------------------
    txns = cluster_result.extra.get("steal_txns", {})
    unsettled = txns.get("intent", 0) + txns.get("transfer", 0)
    if unsettled:
        violations.append(
            AuditViolation(
                "txn-settled",
                None,
                f"{unsettled} steal transaction(s) still pending at finish",
            )
        )

    # -- profit floor ---------------------------------------------------
    profit = float(cluster_result.total_profit)
    if baseline_profit is not None and baseline_profit > 0:
        if profit < profit_floor * baseline_profit:
            violations.append(
                AuditViolation(
                    "profit-floor",
                    None,
                    f"retained {profit / baseline_profit:.3f} "
                    f"< floor {profit_floor}",
                )
            )

    return AuditReport(
        submitted=len(submitted_ids),
        completed=completed,
        expired=expired,
        shed=sum(len(res.shed) for res in cluster_result.shard_results),
        cluster_shed=len(cluster_shed),
        dropped=len(dropped),
        profit=profit,
        baseline_profit=baseline_profit,
        profit_floor=profit_floor,
        violations=violations,
    )
