"""Checkpoint/restore for the whole scheduling service.

A service snapshot is one JSON document bundling the engine session
(:meth:`repro.sim.engine.Simulator.snapshot_state`), the scheduler's
state (:meth:`repro.sim.scheduler.SchedulerBase.snapshot_state`), the
ingest queue, the shed log and the telemetry values.  Restoring into a
fresh process and finishing the stream yields *bit-identical* profit
and records to the uninterrupted run -- the property the
kill-and-restore tests pin down with the replay harness
(:mod:`repro.service.replay`).

Scheduler instances are not pickled: the caller constructs a scheduler
of the same type (same constructor arguments) and the snapshot restores
its dynamic state.  The snapshot records the scheduler's class name and
refuses to restore into a different type.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Optional

from repro.errors import SimulationError
from repro.service.queue import QueuedJob, make_shed_policy
from repro.service.service import SchedulingService, ShedRecord
from repro.service.telemetry import MetricsRegistry
from repro.sim.picker import NodePicker
from repro.sim.scheduler import Scheduler
from repro.workloads.serialize import spec_from_dict, spec_to_dict

#: Service snapshot format version (bump on incompatible change).
SNAPSHOT_VERSION = 1


def service_to_dict(service: SchedulingService) -> dict[str, Any]:
    """Serialize a running service to a JSON-compatible dict."""
    if not service.sim.started:
        raise SimulationError("service has no open session to snapshot")
    return {
        "version": SNAPSHOT_VERSION,
        "service": {
            "engine": service.engine,
            "capacity": service.queue.capacity,
            "policy": service.queue.policy.name,
            "max_in_flight": service.max_in_flight,
            "sample_every": service.sample_every,
            "queue_accepted": service.queue.accepted,
            "queue_shed": service.queue.shed,
            "last_sample_t": service._last_sample_t,
        },
        "engine": service.sim.snapshot_state(),
        "scheduler": {
            "type": type(service.sim.scheduler).__name__,
            "state": service.sim.scheduler.snapshot_state(),
        },
        "queue": [
            {
                "spec": spec_to_dict(entry.spec),
                "enqueued_at": entry.enqueued_at,
                "density": entry.density,
            }
            for entry in service.queue.entries()
        ],
        "shed": [
            {
                "job_id": rec.job_id,
                "time": rec.time,
                "reason": rec.reason,
                "density": rec.density,
                "profit": rec.profit,
            }
            for rec in service.shed_log
        ],
        "metrics": service.metrics.state_to_dict(),
    }


def service_from_dict(
    data: dict[str, Any],
    scheduler: Scheduler,
    *,
    picker: Optional[NodePicker] = None,
    metrics: Optional[MetricsRegistry] = None,
    recorder: Optional[Any] = None,
) -> SchedulingService:
    """Rebuild a service from a :func:`service_to_dict` snapshot.

    ``scheduler`` must be a fresh instance of the snapshotted type
    (constructed with the same arguments); its dynamic state is restored
    from the snapshot.  ``metrics`` may be a fresh registry (e.g. with a
    new JSONL sink); metric values are restored into it.
    """
    if data.get("version") != SNAPSHOT_VERSION:
        raise SimulationError(
            f"unsupported service snapshot version {data.get('version')}"
        )
    sched_type = data["scheduler"]["type"]
    if type(scheduler).__name__ != sched_type:
        raise SimulationError(
            f"snapshot was taken with scheduler {sched_type!r}, "
            f"got {type(scheduler).__name__!r}"
        )
    svc_cfg = data["service"]
    engine_cfg = data["engine"]["config"]
    service = SchedulingService(
        m=engine_cfg["m"],
        scheduler=scheduler,
        capacity=svc_cfg["capacity"],
        shed_policy=make_shed_policy(svc_cfg["policy"]),
        max_in_flight=svc_cfg["max_in_flight"],
        speed=engine_cfg["speed"],
        picker=picker,
        horizon=engine_cfg["horizon"],
        preemption_overhead=engine_cfg["preemption_overhead"],
        metrics=metrics,
        sample_every=svc_cfg["sample_every"],
        recorder=recorder,
        # engine backends are snapshot-interchangeable (bit-identical),
        # so older snapshots without the field restore onto "event"
        engine=svc_cfg.get("engine", "event"),
    )
    views = service.sim.restore_state(data["engine"])
    scheduler.restore_state(data["scheduler"]["state"], views)
    for entry in data["queue"]:
        service.queue._entries.append(
            QueuedJob(
                spec=spec_from_dict(entry["spec"]),
                enqueued_at=int(entry["enqueued_at"]),
                density=float(entry["density"]),
            )
        )
    service.queue.accepted = int(svc_cfg["queue_accepted"])
    service.queue.shed = int(svc_cfg["queue_shed"])
    service.shed_log = [
        ShedRecord(
            job_id=int(rec["job_id"]),
            time=int(rec["time"]),
            reason=str(rec["reason"]),
            density=float(rec["density"]),
            profit=float(rec["profit"]),
        )
        for rec in data["shed"]
    ]
    service.metrics.restore_from_dict(data["metrics"])
    last = svc_cfg["last_sample_t"]
    service._last_sample_t = None if last is None else int(last)
    return service


def save_snapshot(service: SchedulingService, path: str) -> None:
    """Write a service snapshot to a JSON file, durably.

    A ``<path>.sha256`` sidecar carries the digest of the exact file
    bytes; :func:`load_snapshot` verifies it so bit rot or a torn write
    surfaces as a clear error instead of a JSON parse failure (or a
    silently wrong restore) deep inside recovery.
    """
    body = json.dumps(service_to_dict(service)).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    digest = hashlib.sha256(body).hexdigest()
    with open(path + ".sha256", "w", encoding="utf-8") as fh:
        fh.write(digest + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_snapshot(
    path: str,
    scheduler: Scheduler,
    *,
    picker: Optional[NodePicker] = None,
    metrics: Optional[MetricsRegistry] = None,
    recorder: Optional[Any] = None,
) -> SchedulingService:
    """Read a JSON snapshot file and rebuild the service.

    When a ``<path>.sha256`` sidecar exists the file bytes are verified
    against it first; a mismatch raises
    :class:`~repro.errors.SimulationError`.  Snapshots written before
    the sidecar existed (or whose sidecar was deleted) load unchecked.
    """
    with open(path, "rb") as fh:
        body = fh.read()
    sidecar = path + ".sha256"
    if os.path.exists(sidecar):
        with open(sidecar, "r", encoding="utf-8") as fh:
            expected = fh.read().strip()
        actual = hashlib.sha256(body).hexdigest()
        if actual != expected:
            raise SimulationError(
                f"snapshot {path} failed its digest check "
                f"(expected {expected[:12]}..., got {actual[:12]}...)"
            )
    data = json.loads(body.decode("utf-8"))
    return service_from_dict(
        data, scheduler, picker=picker, metrics=metrics, recorder=recorder
    )
