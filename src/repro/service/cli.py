"""``repro-serve``: drive the online scheduling service from the shell.

Generates a random workload (same knobs as the experiment suite),
streams it through a :class:`~repro.service.service.SchedulingService`
with a bounded ingest queue and shed policy, prints live progress lines
and a final summary, and optionally writes JSONL metrics and a mid-run
checkpoint that is immediately restored (exercising the kill-and-
restore path end to end).

Example -- 10k jobs at 3x overload with density-aware shedding::

    repro-serve --n-jobs 10000 --load 3.0 --capacity 64 \\
        --max-in-flight 32 --policy reject-lowest-density \\
        --metrics metrics.jsonl

With ``--shards K`` (K > 1) the same stream is served by a
:class:`~repro.cluster.service.ClusterService`: ``K`` machine-pool
shards (worker processes by default), jobs placed by ``--router``, and
-- with ``--fault-at T`` -- a shard killed mid-stream and recovered
from its latest checkpoint plus submission-log replay::

    repro-serve --n-jobs 5000 --m 32 --shards 4 --router least-loaded \\
        --fault-at 200 --fault-shard 1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ScenarioError
from repro.service.queue import SHED_POLICIES, make_shed_policy
from repro.service.replay import SubmissionLog
from repro.service.service import SchedulingService
from repro.service.snapshot import load_snapshot, save_snapshot
from repro.service.telemetry import MetricsRegistry
from repro.sim.backends import SERVICE_BACKENDS
from repro.sim.scheduler import Scheduler
from repro.workloads.suite import WorkloadConfig, generate_workload


def _registry():
    """The shared component registry, fully populated."""
    from repro.scenarios.components import install_default_components
    from repro.scenarios.registry import REGISTRY

    install_default_components()
    return REGISTRY


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Stream a generated workload through the online scheduling "
            "service with admission backpressure and telemetry."
        ),
    )
    wl = parser.add_argument_group("workload")
    wl.add_argument("--n-jobs", type=int, default=1000, help="number of jobs")
    wl.add_argument("--m", type=int, default=8, help="number of processors")
    wl.add_argument(
        "--load", type=float, default=2.0, help="offered load (1.0 = capacity)"
    )
    wl.add_argument(
        "--family", default="mixed", help="DAG family (or 'mixed')"
    )
    wl.add_argument(
        "--epsilon", type=float, default=1.0, help="slack parameter epsilon"
    )
    wl.add_argument("--seed", type=int, default=0, help="workload RNG seed")

    srv = parser.add_argument_group("service")
    srv.add_argument(
        "--scheduler",
        default="sns",
        help="scheduling policy (any registered scheduler; see "
        "`repro-scenario list --kind scheduler`)",
    )
    srv.add_argument(
        "--capacity", type=int, default=128, help="ingest queue capacity"
    )
    srv.add_argument(
        "--policy",
        choices=sorted(SHED_POLICIES),
        default="reject-lowest-density",
        help="shed policy when the queue is full",
    )
    srv.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help="cap on jobs inside the engine (default: unbounded)",
    )
    srv.add_argument(
        "--speed", type=float, default=1.0, help="processor speed s"
    )
    srv.add_argument(
        "--engine",
        choices=sorted(SERVICE_BACKENDS),
        default="event",
        help="engine backend (bit-identical; 'array' is the numpy core)",
    )

    cl = parser.add_argument_group("cluster (active when --shards > 1)")
    cl.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="shard the machines into K pools (default 1: single service)",
    )
    cl.add_argument(
        "--router",
        default=None,
        help="shard placement policy (default: consistent-hash, or "
        "band-aware when --coordinate is on)",
    )
    cl.add_argument(
        "--coordinate", action="store_true",
        help="attach the cluster-wide band-aware coordinator: ledger-fed "
        "routing plus density-aware steals of parked/starved jobs "
        "(see docs/SCHEDULING.md)",
    )
    cl.add_argument(
        "--coordinate-every", type=int, default=64, metavar="N",
        help="submissions between coordinator ledger refreshes and "
        "steal ticks",
    )
    cl.add_argument(
        "--steal-batch", type=int, default=64, metavar="N",
        help="max steals per coordinator tick",
    )
    cl.add_argument(
        "--steal-margin", type=float, default=3.0, metavar="X",
        help="density advantage a victim needs over each receiver job "
        "it displaces (> 1)",
    )
    cl.add_argument(
        "--max-displaced", type=int, default=3, metavar="N",
        help="receiver jobs displaced per steal (0 disables displacement)",
    )
    cl.add_argument(
        "--max-moves-per-job", type=int, default=2, metavar="N",
        help="lifetime cap on coordinator migrations of any one job",
    )
    cl.add_argument(
        "--cluster-mode",
        choices=["inprocess", "process"],
        default="process",
        help="run shards in this process or in worker processes",
    )
    cl.add_argument(
        "--migrate-every", type=int, default=0, metavar="T",
        help="rebalance queued jobs every T simulated steps (0 = off)",
    )
    cl.add_argument(
        "--fault-at", type=int, default=None, metavar="T",
        help="kill a shard at simulated time T and recover it",
    )
    cl.add_argument(
        "--fault-shard", type=int, default=0, metavar="I",
        help="which shard --fault-at kills (default 0)",
    )
    cl.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="T",
        help="cluster checkpoint interval when fault injection is on",
    )

    res = parser.add_argument_group(
        "resilience (active with --supervise or --chaos; --shards > 1)"
    )
    res.add_argument(
        "--supervise", action="store_true",
        help="serve through the resilient cluster: heartbeat "
        "supervision, RPC deadlines, circuit breakers",
    )
    res.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        help="supervisor restart budget per shard",
    )
    res.add_argument(
        "--heartbeat-timeout", type=float, default=0.5, metavar="S",
        help="seconds a shard may take to answer a heartbeat",
    )
    res.add_argument(
        "--heartbeat-every", type=int, default=16, metavar="N",
        help="decision points between heartbeat rounds",
    )
    res.add_argument(
        "--on-exhausted", choices=["raise", "degrade"], default="raise",
        help="restart budget spent: exit with a structured error, or "
        "degrade the shard and serve on",
    )
    res.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="durable write-ahead logs for shard submissions",
    )
    res.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="digest-verified on-disk checkpoint store",
    )
    res.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="inject faults: 'kind:shard:at,...' or 'seed:N' "
        "(implies --supervise)",
    )

    out = parser.add_argument_group("output")
    out.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write JSONL metrics samples to PATH",
    )
    out.add_argument(
        "--sample-every", type=int, default=None, metavar="T",
        help="minimum simulated time between metric samples",
    )
    out.add_argument(
        "--report-every", type=int, default=2000, metavar="N",
        help="print a progress line every N submissions (0 = quiet)",
    )
    out.add_argument(
        "--checkpoint-at", type=int, default=None, metavar="T",
        help="snapshot + restore the service at simulated time T",
    )
    out.add_argument(
        "--checkpoint-path", default=None, metavar="PATH",
        help="where to write the checkpoint (default: in-memory only)",
    )
    out.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a structured decision trace and write it to PATH "
        "as JSONL (inspect with repro-trace)",
    )

    sc = parser.add_argument_group("scenario")
    sc.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="run this scenario spec (.toml/.json) instead of the flags "
        "(other flags are ignored; use --set in repro-scenario to "
        "override spec values)",
    )
    sc.add_argument(
        "--dump-scenario", action="store_true",
        help="print the flags as a canonical scenario TOML and exit",
    )
    return parser


def _make_scheduler(args: argparse.Namespace) -> Scheduler:
    component = _registry().get("scheduler", args.scheduler)
    kwargs = (
        {"epsilon": args.epsilon}
        if component.meta.get("accepts_epsilon")
        else {}
    )
    return component.create(**kwargs)


def _spec_from_args(args: argparse.Namespace):
    """Map the flag namespace onto an equivalent :class:`ScenarioSpec`.

    The builder mirrors this CLI's construction exactly, so the
    returned spec runs to the same result fingerprint as the flags.
    """
    from repro.scenarios.spec import ScenarioSpec

    doc: dict = {
        "scenario": {
            "name": "repro-serve",
            "mode": "cluster" if args.shards > 1 else "service",
            "seed": args.seed,
        },
        "workload": {
            "n_jobs": args.n_jobs,
            "m": args.m,
            "load": args.load,
            "family": args.family,
            "epsilon": args.epsilon,
        },
        "engine": {"speed": args.speed, "backend": args.engine},
        "scheduler": {"name": args.scheduler},
        "service": {
            "capacity": args.capacity,
            "shed_policy": args.policy,
            "max_in_flight": args.max_in_flight or 0,
            "sample_every": args.sample_every or 0,
        },
        "tracing": {
            "enabled": args.trace is not None,
            "path": args.trace or "",
        },
    }
    if args.shards > 1:
        doc["cluster"] = {
            "shards": args.shards,
            "router": args.router or "",
            "mode": args.cluster_mode,
            "migrate_every": args.migrate_every,
            "coordinate": args.coordinate,
            "coordinate_every": args.coordinate_every,
            "steal_batch": args.steal_batch,
            "steal_margin": args.steal_margin,
            "max_displaced": args.max_displaced,
            "max_moves_per_job": args.max_moves_per_job,
            "checkpoint_every": args.checkpoint_every,
            "supervise": args.supervise,
        }
        if args.chaos is not None:
            doc["faults"] = {"kind": "chaos", "chaos": args.chaos}
        elif args.fault_at is not None:
            doc["faults"] = {
                "kind": "kill",
                "shard": args.fault_shard,
                "at": args.fault_at,
            }
    return ScenarioSpec.from_dict(doc)


def _run_scenario_file(path: str) -> int:
    """Shared ``--scenario SPEC`` handler for the wrapper CLIs."""
    from repro.scenarios.cli import main as scenario_main

    return scenario_main(["run", path])


def _progress(service: SchedulingService, submitted: int, total: int) -> str:
    vals = service.metrics.values()
    return (
        f"t={service.now:>8d}  submitted={submitted}/{total}  "
        f"depth={service.queue.depth}  in_flight={service.in_flight}  "
        f"completed={int(vals.get('completed_total', 0))}  "
        f"expired={int(vals.get('expired_total', 0))}  "
        f"shed={len(service.shed_log)}  "
        f"profit={vals.get('profit_total', 0.0):.2f}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-serve`` console script."""
    args = build_parser().parse_args(argv)
    if args.scenario:
        return _run_scenario_file(args.scenario)
    try:
        if args.dump_scenario:
            sys.stdout.write(_spec_from_args(args).to_toml())
            return 0
        _registry().get("scheduler", args.scheduler)
        if args.router is not None:
            _registry().get("router", args.router)
    except ScenarioError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=args.n_jobs,
            m=args.m,
            load=args.load,
            family=args.family,
            epsilon=args.epsilon,
            seed=args.seed,
        )
    )
    specs.sort(key=lambda sp: (sp.arrival, sp.job_id))
    tracer = None
    if args.trace:
        from repro.observability import TraceRecorder

        tracer = TraceRecorder()
    if args.shards > 1:
        return _main_cluster(args, specs, tracer)
    log = SubmissionLog()
    sink = open(args.metrics, "w", encoding="utf-8") if args.metrics else None
    try:
        metrics = MetricsRegistry(sink=sink, keep_samples=False)
        service = SchedulingService(
            m=args.m,
            scheduler=_make_scheduler(args),
            capacity=args.capacity,
            shed_policy=make_shed_policy(args.policy),
            max_in_flight=args.max_in_flight,
            speed=args.speed,
            metrics=metrics,
            sample_every=args.sample_every,
            recorder=log,
            tracer=tracer,
        )
        service.start()
        print(
            f"repro-serve: {args.n_jobs} jobs, m={args.m}, "
            f"load={args.load}, scheduler={args.scheduler}, "
            f"capacity={args.capacity}, policy={args.policy}",
            flush=True,
        )
        checkpointed = False
        for i, spec in enumerate(specs, 1):
            if (
                args.checkpoint_at is not None
                and not checkpointed
                and spec.arrival >= args.checkpoint_at
            ):
                service = _checkpoint_restore(
                    service, args, metrics, log, tracer
                )
                checkpointed = True
            service.submit(spec, t=spec.arrival)
            if args.report_every and i % args.report_every == 0:
                print(_progress(service, i, len(specs)), flush=True)
        result = service.finish()
    finally:
        if sink is not None:
            sink.close()

    counters = result.result.counters
    print("---")
    print(f"end_time:        {result.result.end_time}")
    print(f"completed:       {counters.completions}")
    print(f"expired:         {counters.expiries}")
    print(f"shed:            {result.num_shed}")
    print(f"total_profit:    {result.total_profit:.4f}")
    print(f"profit_shed:     {result.profit_shed:.4f}")
    print(f"decisions:       {counters.decisions}")
    print(f"fingerprint:     {_fingerprint('service', result)}")
    if args.metrics:
        print(f"metrics written: {args.metrics}")
    if tracer is not None:
        _write_trace(tracer, args.trace)
    return 0


def _fingerprint(mode: str, result) -> str:
    from repro.scenarios.builder import result_fingerprint

    return result_fingerprint(mode, result)


def _write_trace(tracer, path: str) -> None:
    """Export a recorded trace as JSONL and announce it."""
    from repro.observability import write_jsonl

    write_jsonl(tracer.events, path)
    print(f"trace written:   {path} ({len(tracer)} events)")


def _main_cluster(
    args: argparse.Namespace, specs: list, tracer=None
) -> int:
    """Serve the stream through a sharded cluster (``--shards > 1``).

    With ``--supervise`` or ``--chaos`` the resilient cluster serves
    the stream instead; a shard whose restart budget is exhausted under
    ``--on-exhausted raise`` aborts the run with a structured JSON
    error summary on stderr and exit code 2.
    """
    from repro.cluster import (
        ClusterService,
        FaultInjector,
        QueueBalancer,
        ShardConfig,
    )
    from repro.errors import RestartBudgetExhausted, ShardFailedError

    component = _registry().get("scheduler", args.scheduler)
    scheduler_kwargs = (
        {"epsilon": args.epsilon}
        if component.meta.get("accepts_epsilon")
        else {}
    )
    router = args.router or (
        "band-aware" if args.coordinate else "consistent-hash"
    )
    resilient = args.supervise or args.chaos is not None
    injector = None
    if args.chaos is not None:
        from repro.resilience.chaos import ChaosInjector, ChaosSchedule

        if args.chaos.startswith("seed:"):
            horizon = max(spec.arrival for spec in specs) or 1
            schedule = ChaosSchedule.generate(
                int(args.chaos.split(":", 1)[1]),
                k=args.shards,
                horizon=horizon,
            )
        else:
            schedule = ChaosSchedule.parse(args.chaos)
        injector = ChaosInjector(schedule)
    elif args.fault_at is not None:
        injector = FaultInjector().add(shard=args.fault_shard, at=args.fault_at)
    config = ShardConfig(
        m=1,  # overridden per shard by the machine partition
        scheduler=args.scheduler,
        scheduler_kwargs=scheduler_kwargs,
        capacity=args.capacity,
        shed_policy=args.policy,
        max_in_flight=args.max_in_flight,
        speed=args.speed,
        sample_every=args.sample_every,
    )
    if resilient:
        from repro.resilience import (
            ResilientClusterService,
            SupervisorConfig,
        )

        cluster = ResilientClusterService(
            m=args.m,
            k=args.shards,
            config=config,
            router=router,
            mode=args.cluster_mode,
            migration=QueueBalancer() if args.migrate_every else None,
            migrate_every=args.migrate_every,
            fault_injector=injector,
            checkpoint_every=args.checkpoint_every,
            supervisor=SupervisorConfig(
                heartbeat_timeout=args.heartbeat_timeout,
                heartbeat_every=args.heartbeat_every,
                max_restarts=args.max_restarts,
                on_exhausted=args.on_exhausted,
            ),
            wal_dir=args.wal_dir,
            checkpoint_dir=args.checkpoint_dir,
            tracer=tracer,
        )
    else:
        cluster = ClusterService(
            m=args.m,
            k=args.shards,
            config=config,
            router=router,
            mode=args.cluster_mode,
            migration=QueueBalancer() if args.migrate_every else None,
            migrate_every=args.migrate_every,
            fault_injector=injector,
            checkpoint_every=args.checkpoint_every if injector else None,
            tracer=tracer,
        )
    if args.coordinate:
        from repro.cluster import coordinate

        coordinate(
            cluster,
            refresh_every=args.coordinate_every,
            steal_batch=args.steal_batch,
            steal_margin=args.steal_margin,
            max_displaced=args.max_displaced,
            max_moves_per_job=args.max_moves_per_job,
        )
    cluster.start()
    print(
        f"repro-serve: {args.n_jobs} jobs, m={args.m}, shards={args.shards}, "
        f"mode={args.cluster_mode}, router={router}, "
        f"scheduler={args.scheduler}, migrate_every={args.migrate_every}, "
        f"fault_at={args.fault_at}, "
        f"coordinate={'yes' if args.coordinate else 'no'}, "
        f"resilient={'yes' if resilient else 'no'}",
        flush=True,
    )
    try:
        for i, spec in enumerate(specs, 1):
            cluster.submit(spec, t=spec.arrival)
            if args.report_every and i % args.report_every == 0:
                print(
                    f"t={cluster.now:>8d}  submitted={i}/{len(specs)}",
                    flush=True,
                )
        result = cluster.finish()
    except RestartBudgetExhausted as exc:
        json.dump(exc.summary(), sys.stderr, indent=2)
        sys.stderr.write("\n")
        print(
            f"error: shard {exc.shard} recovery exhausted after "
            f"{exc.restarts} restarts ({exc.fault}); aborting",
            flush=True,
        )
        return 2
    except ShardFailedError as exc:
        json.dump(
            {
                "error": "shard-failed",
                "shard": exc.shard,
                "fault": exc.reason,
            },
            sys.stderr,
            indent=2,
        )
        sys.stderr.write("\n")
        print(f"error: shard {exc.shard} failed ({exc.reason}); aborting")
        return 2

    values = result.metrics.values()
    print("---")
    print(f"end_time:        {result.end_time}")
    print(f"completed:       {int(values.get('completed_total', 0))}")
    print(f"expired:         {int(values.get('expired_total', 0))}")
    print(f"shed:            {result.num_shed}")
    print(f"migrated:        {int(values.get('migrations_total', 0))}")
    if args.coordinate:
        print(f"steals:          {int(values.get('steals_total', 0))}")
        print(
            f"displaced:       "
            f"{int(values.get('steals_displaced_total', 0))}"
        )
    print(f"total_profit:    {result.total_profit:.4f}")
    print(f"fingerprint:     {_fingerprint('cluster', result)}")
    for event in result.recoveries:
        print(
            f"recovery:        shard {event.shard} at t={event.time} "
            f"(checkpoint t={event.checkpoint_time}, "
            f"replayed {event.replayed} submissions, "
            f"{event.wall_seconds * 1000:.1f} ms)"
        )
    for event in result.extra.get("supervision_events", []):
        print(
            f"supervision:     shard {event.shard} {event.reason} at "
            f"t={event.time} -> {event.action} "
            f"(#{event.restarts}, detect {event.detection_seconds * 1000:.1f} ms, "
            f"restart {event.restart_seconds * 1000:.1f} ms)"
        )
    degraded = result.extra.get("degraded_shards", [])
    if degraded:
        print(f"degraded:        shards {degraded}")
    cluster_shed = result.extra.get("cluster_shed", [])
    if cluster_shed:
        print(f"cluster_shed:    {len(cluster_shed)}")
    if tracer is not None:
        _write_trace(tracer, args.trace)
    if args.metrics:
        merged = result.metrics
        merged.samples = sorted(
            (
                {"shard": index, **sample}
                for index, shard_result in enumerate(result.shard_results)
                for sample in shard_result.metrics.samples
            ),
            key=lambda s: (s["t"], s["shard"]),
        )
        merged.write_jsonl(args.metrics)
        print(f"metrics written: {args.metrics}")
    return 0


def _checkpoint_restore(
    service: SchedulingService,
    args: argparse.Namespace,
    metrics: MetricsRegistry,
    log: SubmissionLog,
    tracer=None,
) -> SchedulingService:
    """Snapshot the live service, discard it, restore, and continue."""
    from repro.service.snapshot import service_from_dict, service_to_dict

    if args.checkpoint_path:
        save_snapshot(service, args.checkpoint_path)
        restored = load_snapshot(
            args.checkpoint_path,
            _make_scheduler(args),
            metrics=metrics,
            recorder=log,
        )
        where = args.checkpoint_path
    else:
        blob = json.dumps(service_to_dict(service))
        restored = service_from_dict(
            json.loads(blob),
            _make_scheduler(args),
            metrics=metrics,
            recorder=log,
        )
        where = "<memory>"
    if tracer is not None:
        restored.attach_tracer(tracer)
    print(
        f"checkpoint: t={restored.now} restored from {where} "
        f"({restored.in_flight} in flight, depth={restored.queue.depth})",
        flush=True,
    )
    return restored


if __name__ == "__main__":
    sys.exit(main())
