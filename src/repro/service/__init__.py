"""Online scheduling service layer over the simulation engine.

Turns the batch simulator into a long-running system: incremental
stepping (:class:`SchedulingService`), bounded-queue admission with shed
policies, JSON checkpoint/restore, telemetry with JSONL export, and the
``repro-serve`` CLI.
"""

from repro.service.queue import (
    IngestQueue,
    QueuedJob,
    RejectLowestDensity,
    RejectNewest,
    SHED_POLICIES,
    ShedPolicy,
    make_shed_policy,
    sns_density,
)
from repro.service.replay import SubmissionLog, checkpoint_roundtrip, drive, replay
from repro.service.service import (
    Admission,
    SchedulingService,
    ServiceResult,
    ShedRecord,
)
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    load_snapshot,
    save_snapshot,
    service_from_dict,
    service_to_dict,
)
from repro.service.telemetry import Counter, Gauge, MetricsRegistry

__all__ = [
    "Admission",
    "Counter",
    "Gauge",
    "IngestQueue",
    "MetricsRegistry",
    "QueuedJob",
    "RejectLowestDensity",
    "RejectNewest",
    "SHED_POLICIES",
    "SNAPSHOT_VERSION",
    "SchedulingService",
    "ServiceResult",
    "ShedPolicy",
    "ShedRecord",
    "SubmissionLog",
    "checkpoint_roundtrip",
    "drive",
    "load_snapshot",
    "make_shed_policy",
    "replay",
    "save_snapshot",
    "service_from_dict",
    "service_to_dict",
    "sns_density",
]
