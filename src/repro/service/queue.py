"""Bounded ingest queue with pluggable shed policies.

The service puts this queue in front of the scheduler: submissions
enter here and are released into the engine as in-flight capacity
allows.  When the queue is full, a :class:`ShedPolicy` picks a *victim*
to drop -- overload degrades by shedding the least valuable work
instead of growing memory without bound (the serving-layer analogue of
the paper's admission condition, which only bounds *started* jobs).

Two policies ship:

* :class:`RejectNewest` -- classic bounded-buffer tail drop;
* :class:`RejectLowestDensity` -- drop the job with the smallest
  density ``v_i = p_i / (x_i n_i)``, the exact quantity scheduler S
  orders its queues by (:mod:`repro.core.sns`), so overload sheds the
  work S values least.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.core.theory import Constants
from repro.errors import WorkloadError
from repro.sim.jobs import JobSpec


def sns_density(
    spec: JobSpec, m: int, constants: Constants, speed: float = 1.0
) -> float:
    """Scheduler S's density ``v_i = p_i/(x_i n_i)`` for a job spec.

    Mirrors :meth:`repro.core.sns.SNSScheduler.compute_state` (work and
    span divided by the machine speed).  General-profit jobs have no
    relative deadline; they fall back to profit per unit work, the
    natural density when the allotment is unknown.
    """
    work = spec.work / speed
    span = spec.span / speed
    rel = spec.relative_deadline
    if rel is None or work <= 0:
        return spec.profit / max(work, 1e-12)
    n = constants.allotment(work, span, rel, m)
    x = constants.execution_bound(work, span, n)
    return constants.density(spec.profit, x, n)


@dataclass
class QueuedJob:
    """One buffered submission: the spec plus queue-time metadata."""

    spec: JobSpec
    #: simulated time the job entered the queue
    enqueued_at: int
    #: S's density of the job (see :func:`sns_density`)
    density: float

    @property
    def job_id(self) -> int:
        """The spec's job id."""
        return self.spec.job_id


class ShedPolicy:
    """Chooses the victim when a full queue receives a new job."""

    #: registry name (see :data:`SHED_POLICIES`)
    name = "abstract"

    def victim(
        self, queued: "IngestQueue", incoming: QueuedJob
    ) -> QueuedJob:
        """Return the job to drop: ``incoming`` or a currently queued one."""
        raise NotImplementedError


class RejectNewest(ShedPolicy):
    """Tail drop: the incoming job is rejected, the queue is untouched."""

    name = "reject-newest"

    def victim(self, queued: "IngestQueue", incoming: QueuedJob) -> QueuedJob:
        """Always shed the incoming job."""
        return incoming


class RejectLowestDensity(ShedPolicy):
    """Shed the lowest-density job among queued + incoming.

    Ties break toward the later enqueue (keep the job that has waited
    longer), then the larger id -- fully deterministic.
    """

    name = "reject-lowest-density"

    def victim(self, queued: "IngestQueue", incoming: QueuedJob) -> QueuedJob:
        """Return the minimum-density entry of queue + incoming."""
        candidates = list(queued.entries()) + [incoming]
        return min(
            candidates, key=lambda e: (e.density, -e.enqueued_at, -e.job_id)
        )


#: Shed-policy registry by name, for CLI flags and snapshots.
SHED_POLICIES: dict[str, type[ShedPolicy]] = {
    RejectNewest.name: RejectNewest,
    RejectLowestDensity.name: RejectLowestDensity,
}


def make_shed_policy(name: str) -> ShedPolicy:
    """Instantiate a shed policy by registry name."""
    try:
        return SHED_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown shed policy {name!r}; known: {sorted(SHED_POLICIES)}"
        ) from None


class IngestQueue:
    """Bounded FIFO buffer between submission and the scheduler.

    Jobs are released (popped) in enqueue order; when :meth:`offer` is
    called on a full queue the policy selects a victim, which is
    returned to the caller for accounting.  Depth never exceeds
    ``capacity``.
    """

    def __init__(
        self, capacity: int, policy: Optional[ShedPolicy] = None
    ) -> None:
        if capacity < 1:
            raise WorkloadError("queue capacity must be >= 1")
        self.capacity = int(capacity)
        self.policy = policy if policy is not None else RejectNewest()
        self._entries: deque[QueuedJob] = deque()
        #: total jobs ever accepted into the queue
        self.accepted = 0
        #: total jobs ever shed (incoming or displaced)
        self.shed = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> tuple[QueuedJob, ...]:
        """Current entries in release (FIFO) order."""
        return tuple(self._entries)

    @property
    def depth(self) -> int:
        """Current number of buffered jobs."""
        return len(self._entries)

    # ------------------------------------------------------------------
    def offer(self, entry: QueuedJob) -> Optional[QueuedJob]:
        """Add ``entry``, shedding a victim if the queue is full.

        Returns the shed :class:`QueuedJob` (possibly ``entry`` itself),
        or ``None`` when the queue had room.
        """
        if len(self._entries) < self.capacity:
            self._entries.append(entry)
            self.accepted += 1
            return None
        victim = self.policy.victim(self, entry)
        self.shed += 1
        if victim is entry:
            return victim
        self._entries.remove(victim)
        self._entries.append(entry)
        self.accepted += 1
        return victim

    def pop(self) -> QueuedJob:
        """Release the oldest buffered job."""
        return self._entries.popleft()

    def peek(self) -> Optional[QueuedJob]:
        """The next job to be released, or ``None`` when empty."""
        return self._entries[0] if self._entries else None

    def take_newest(self, n: int) -> list[QueuedJob]:
        """Remove and return up to ``n`` entries from the *tail* (newest
        first).

        The migration layer uses this to move queued-but-unstarted jobs
        off an overloaded shard: taking from the tail preserves the FIFO
        release order of everything that stays, and the newest jobs have
        waited least, so moving them forfeits the least accumulated
        queue position.
        """
        taken: list[QueuedJob] = []
        while self._entries and len(taken) < n:
            taken.append(self._entries.pop())
        return taken

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestQueue(depth={self.depth}/{self.capacity}, "
            f"policy={self.policy.name}, shed={self.shed})"
        )
