"""The online scheduling service: ingest queue + incremental engine +
telemetry, behind a submit/advance/finish interface.

:class:`SchedulingService` turns the batch simulator into a long-running
system with the serving-layer behaviours the paper's *online* setting
implies but the batch driver cannot express:

* **open-ended arrivals** -- jobs are submitted while simulated time
  advances, via the engine's streaming session
  (:meth:`repro.sim.engine.Simulator.submit` /
  :meth:`~repro.sim.engine.Simulator.advance_to`);
* **admission backpressure** -- a bounded :class:`~repro.service.queue.
  IngestQueue` with a shed policy sits in front of the scheduler, and an
  optional in-flight cap throttles release into the engine, so overload
  sheds the least valuable work instead of growing without bound;
* **telemetry** -- queue depth, shed rate, utilization, profit rate and
  jobs in flight are sampled into a
  :class:`~repro.service.telemetry.MetricsRegistry` at decision points;
* **restart safety** -- the whole service state checkpoints to JSON and
  restores bit-identically (:mod:`repro.service.snapshot`).

In pass-through configuration (unbounded in-flight, queue never full)
a service-driven run is bit-identical to ``Simulator.run`` on the same
arrival sequence -- the property the equivalence tests pin down.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Sequence

from repro.core.theory import Constants
from repro.sim.backends import SERVICE_BACKENDS, make_engine
from repro.sim.engine import SimulationResult
from repro.sim.jobs import JobSpec
from repro.sim.picker import NodePicker
from repro.sim.scheduler import Scheduler
from repro.service.queue import IngestQueue, QueuedJob, ShedPolicy, sns_density
from repro.service.telemetry import MetricsRegistry


class Admission(enum.Enum):
    """Outcome of one :meth:`SchedulingService.submit` call."""

    #: released straight into the engine
    ADMITTED = "admitted"
    #: buffered in the ingest queue (backpressure engaged)
    QUEUED = "queued"
    #: dropped by the shed policy (this submission never runs)
    SHED = "shed"


@dataclass(frozen=True)
class ShedRecord:
    """One job dropped by the service (never entered the engine)."""

    job_id: int
    #: simulated time of the drop
    time: int
    #: "shed" (policy decision), "expired-in-queue", or "starved"
    reason: str
    #: S's density of the dropped job
    density: float
    #: profit the job would have been worth on time
    profit: float


@dataclass
class ServiceResult:
    """Everything a finished service run reports."""

    #: the engine's result over the jobs that were actually released
    result: SimulationResult
    #: jobs the service dropped before release
    shed: list[ShedRecord]
    #: the telemetry registry (samples + final values)
    metrics: MetricsRegistry
    extra: dict = field(default_factory=dict)

    @property
    def total_profit(self) -> float:
        """Profit earned by released jobs."""
        return self.result.total_profit

    @property
    def num_shed(self) -> int:
        """Number of jobs dropped before release."""
        return len(self.shed)

    @property
    def profit_shed(self) -> float:
        """Total on-time profit of the dropped jobs (an upper bound on
        what shedding cost)."""
        return sum(rec.profit for rec in self.shed)


class SchedulingService:
    """Long-running online scheduling service over the simulation engine.

    Parameters
    ----------
    m, scheduler, speed, picker, horizon, preemption_overhead:
        Forwarded to :class:`~repro.sim.engine.Simulator`.
    capacity:
        Ingest-queue bound (jobs buffered before release).
    shed_policy:
        Victim selection when the queue is full; default reject-newest.
    max_in_flight:
        Cap on jobs concurrently inside the engine (released, not yet
        finished).  ``None`` (default) releases immediately -- the
        pass-through mode that is bit-identical to batch runs.
    constants:
        :class:`~repro.core.theory.Constants` used to compute shed
        densities; defaults to the scheduler's own constants when it has
        them, else ``Constants.from_epsilon(1.0)``.
    metrics:
        Telemetry registry; a fresh in-memory one by default.
    sample_every:
        Minimum simulated-time gap between telemetry samples (``None``
        samples at every decision point).
    recorder:
        Optional :class:`~repro.service.replay.SubmissionLog`; every
        submission is recorded for deterministic re-driving.
    tracer:
        Optional structured trace recorder (see
        :mod:`repro.observability.recorder`).  Forwarded to the engine
        and additionally fed the service-level lifecycle events:
        ``submit`` (with its admission outcome), ``release`` and the
        terminal ``shed``.  Tracing never changes the run.
    profiler:
        Optional :class:`~repro.observability.profiler.Profiler`
        forwarded to the engine's hot-path sections.
    engine:
        Engine backend name from
        :data:`~repro.sim.backends.SERVICE_BACKENDS` (``"event"`` or
        ``"array"``).  The legacy oracle is rejected: it lacks the
        snapshot/migration surface the service and cluster layers use.
    """

    def __init__(
        self,
        m: int,
        scheduler: Scheduler,
        *,
        capacity: int = 1024,
        shed_policy: Optional[ShedPolicy] = None,
        max_in_flight: Optional[int] = None,
        speed: float = 1.0,
        picker: Optional[NodePicker] = None,
        horizon: Optional[int] = None,
        preemption_overhead: float = 0.0,
        constants: Optional[Constants] = None,
        metrics: Optional[MetricsRegistry] = None,
        sample_every: Optional[int] = None,
        recorder: Optional[Any] = None,
        tracer: Optional[Any] = None,
        profiler: Optional[Any] = None,
        engine: str = "event",
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if sample_every is not None and sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if engine not in SERVICE_BACKENDS:
            valid = ", ".join(SERVICE_BACKENDS)
            raise ValueError(
                f"service engine must be one of: {valid} (got {engine!r};"
                " the legacy oracle has no snapshot/migration surface)"
            )
        self.engine = engine
        self.sim = make_engine(
            engine,
            m=m,
            scheduler=scheduler,
            picker=picker,
            speed=speed,
            horizon=horizon,
            preemption_overhead=preemption_overhead,
            recorder=tracer,
            profiler=profiler,
        )
        self.tracer = tracer
        self.queue = IngestQueue(capacity, shed_policy)
        self.max_in_flight = max_in_flight
        if constants is None:
            constants = getattr(scheduler, "constants", None)
        if constants is None:
            constants = Constants.from_epsilon(1.0)
        self.constants = constants
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sample_every = sample_every
        self.recorder = recorder
        #: jobs dropped before release, in drop order
        self.shed_log: list[ShedRecord] = []
        self._last_sample_t: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the underlying engine session (idempotent)."""
        if not self.sim.started:
            self.sim.start()

    def attach_tracer(
        self, tracer: Optional[Any], profiler: Optional[Any] = None
    ) -> None:
        """Attach (or detach, with ``None``) a trace recorder mid-life.

        Used by cluster shards to re-attach their shard-tagged trace
        view after a restore; takes effect from the next engine advance.
        """
        self.tracer = tracer
        self.sim.recorder = tracer
        if profiler is not None:
            self.sim.profiler = profiler

    @property
    def now(self) -> int:
        """Current simulated time."""
        return self.sim.now

    @property
    def in_flight(self) -> int:
        """Jobs inside the engine: released-and-active plus released-
        but-not-yet-arrived."""
        return self.sim.active_count + self.sim.pending_count

    def submit(self, spec: JobSpec, t: Optional[int] = None) -> Admission:
        """Submit a job at time ``t`` (default: now) and report its fate.

        Advances the clock to ``t`` first when ahead of it.  The job is
        offered to the ingest queue; a full queue invokes the shed
        policy.  Whatever fits and clears the in-flight cap is released
        into the engine immediately.
        """
        self.start()
        if t is not None and t > self.sim.now:
            self.advance_to(t)
        now = self.sim.now
        if self.recorder is not None:
            self.recorder.record(now, spec)
        self.metrics.counter("submitted_total").inc()
        entry = QueuedJob(
            spec=spec,
            enqueued_at=now,
            density=sns_density(spec, self.sim.m, self.constants, self.sim.speed),
        )
        victim = self.queue.offer(entry)
        if victim is not None:
            self._note_shed(victim, now, "shed")
        self._release()
        self._maybe_sample()
        if victim is entry:
            outcome = Admission.SHED
        elif any(e is entry for e in self.queue.entries()):
            outcome = Admission.QUEUED
        else:
            outcome = Admission.ADMITTED
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                now, "submit", spec.job_id, {"outcome": outcome.value}
            )
        return outcome

    def advance_to(self, t: int) -> int:
        """Advance simulated time, releasing queued jobs as slots free."""
        self.start()
        self.sim.advance_to(t)
        self._release()
        self._maybe_sample()
        return self.sim.now

    def finish(self) -> ServiceResult:
        """Drain queue and engine; return the final :class:`ServiceResult`.

        With an in-flight cap, draining steps simulated time forward so
        completions free slots for still-queued jobs.  If the clock can
        no longer advance (horizon reached) the remaining queued jobs
        are shed as ``"starved"``.
        """
        self.start()
        while self.queue.depth:
            self._release()
            if not self.queue.depth:
                break
            before = self.sim.now
            self.sim.advance_to(before + 1)
            if self.sim.now == before:  # horizon: time is frozen
                while self.queue.depth:
                    entry = self.queue.pop()
                    self._note_shed(entry, self.sim.now, "starved")
                break
        result = self.sim.finish()
        self._sync_gauges(
            result.end_time,
            result.counters,
            in_flight=0,
            profit=result.total_profit,
        )
        self.metrics.gauge("queue_depth").set(0)
        self.metrics.sample(result.end_time)
        self._last_sample_t = result.end_time
        return ServiceResult(
            result=result, shed=list(self.shed_log), metrics=self.metrics
        )

    # ------------------------------------------------------------------
    # Cluster coordination (work-stealing + band ledger)
    # ------------------------------------------------------------------
    def extract_running(self, job_id: int) -> Optional[dict]:
        """Pull a live job out of the engine for migration elsewhere.

        The cluster steal path: the job is preempted, forgotten by this
        service's scheduler, and returned as a JSON-compatible payload
        for :meth:`inject_running` on the receiving service.  Returns
        ``None`` when the job is not live inside this engine.
        """
        self.start()
        payload = self.sim.extract_active(job_id)
        if payload is not None:
            self.metrics.counter("stolen_out_total").inc()
        return payload

    def inject_running(self, payload: dict, t: Optional[int] = None) -> None:
        """Install a job another service's :meth:`extract_running` produced.

        Bypasses the ingest queue: a stolen job was already admitted
        cluster-wide, so it goes straight into the engine (the engine
        re-stamps deadline-job arrivals to *now*, judging the job by
        remaining slack).
        """
        self.start()
        if t is not None and t > self.sim.now:
            self.advance_to(t)
        self.sim.inject_active(payload)
        # no telemetry sample here: injection is a coordinator action,
        # not a stream event, and mid-run profit reads are O(finished)
        self.metrics.counter("stolen_in_total").inc()

    def forget_pending(self, job_id: int) -> Optional[JobSpec]:
        """Withdraw a submitted-but-unreleased job from the engine.

        Recovery-reconciliation surface: a replayed submission that was
        released into the engine at the current instant is neither in
        the ingest queue nor extractable until the clock moves, and
        this is the only way to remove it.  Returns the withdrawn spec
        or ``None``; no shed or completion record is written.
        """
        self.start()
        return self.sim.forget_pending(job_id)

    def coordination_view(self, limit: Optional[int] = None) -> Optional[dict]:
        """Band/queue state for the cluster coordinator's ledger.

        Returns ``None`` when the scheduler does not expose band state
        (baselines).  Otherwise a JSON-compatible dict: started-job band
        entries, parked jobs, and starved started jobs (the allotment
        scan's unserved tail), each with enough static job data
        (``W``/``L``/deadline/profit) to re-evaluate admission on any
        other shard.

        ``limit`` caps the parked/starved entry lists to the ``limit``
        highest-density jobs each (ties to the lower job id).  The steal
        planner consumes victims highest-density-first and plans at most
        a batch per tick, so a cap at the batch size loses nothing while
        keeping the per-refresh encode cost flat in overload -- where
        the parked set is exactly what grows without bound.
        """
        self.start()
        sched = self.sim.scheduler
        if not (
            hasattr(sched, "started_states")
            and hasattr(sched, "parked_states")
            and hasattr(sched, "starved_states")
        ):
            return None

        def encode(state: Any) -> dict:
            view = state.view
            return {
                "job_id": state.job_id,
                "density": state.density,
                "allotment": state.allotment,
                "x": state.x,
                "work": view.work,
                "span": view.span,
                "deadline": state.deadline,
                "profit": view.profit,
            }

        def top(states: Iterable[Any]) -> list[dict]:
            if limit is None:
                return [encode(s) for s in states]
            best = heapq.nsmallest(
                limit, states, key=lambda s: (-s.density, s.job_id)
            )
            return [encode(s) for s in best]

        return {
            "m": self.sim.m,
            "now": self.sim.now,
            "queue_depth": self.queue.depth,
            "started": [
                [s.job_id, s.density, s.allotment]
                for s in sched.started_states()
            ],
            "parked": top(sched.parked_states()),
            "starved": top(sched.starved_states()),
        }

    def run_stream(self, specs: Iterable[JobSpec]) -> ServiceResult:
        """Drive a whole arrival sequence through the service.

        Sorts by ``(arrival, job_id)`` (the online order), advances to
        each arrival, submits, then drains.  In pass-through
        configuration the returned
        :class:`~repro.sim.engine.SimulationResult` is bit-identical to
        ``Simulator.run`` on the same specs.
        """
        self.start()
        ordered: Sequence[JobSpec] = sorted(
            specs, key=lambda sp: (sp.arrival, sp.job_id)
        )
        for spec in ordered:
            self.submit(spec, t=spec.arrival)
        return self.finish()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _release(self) -> None:
        """Move queued jobs into the engine while capacity allows."""
        while self.queue.depth:
            if (
                self.max_in_flight is not None
                and self.in_flight >= self.max_in_flight
            ):
                break
            entry = self.queue.pop()
            now = self.sim.now
            spec = entry.spec
            # admission latency: intended arrival -> release into the
            # engine, covering both queue waiting and (under a paced
            # gateway) delivery quantization; 0 in pass-through mode
            self.metrics.histogram("admission_latency").observe(
                max(0, now - spec.arrival)
            )
            if spec.arrival < now:
                # The job waited in the queue past its arrival: it
                # re-enters the world now, with whatever slack is left.
                if spec.deadline is not None and spec.deadline <= now:
                    self._note_shed(entry, now, "expired-in-queue")
                    continue
                spec = replace(spec, arrival=now)
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.event(
                    now,
                    "release",
                    spec.job_id,
                    {"waited": now - entry.enqueued_at},
                )
            self.sim.submit(spec)
            self.metrics.counter("released_total").inc()

    def _note_shed(self, entry: QueuedJob, t: int, reason: str) -> None:
        self.shed_log.append(
            ShedRecord(
                job_id=entry.job_id,
                time=t,
                reason=reason,
                density=entry.density,
                profit=entry.spec.profit,
            )
        )
        self.metrics.counter("shed_total").inc()
        if reason == "expired-in-queue":
            self.metrics.counter("queue_expired_total").inc()
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                t,
                "shed",
                entry.job_id,
                {
                    "reason": reason,
                    "density": entry.density,
                    "profit": entry.spec.profit,
                },
            )

    def _maybe_sample(self) -> None:
        now = self.sim.now
        self.metrics.histogram("queue_depth").observe(self.queue.depth)
        if (
            self.sample_every is not None
            and self._last_sample_t is not None
            and now - self._last_sample_t < self.sample_every
        ):
            return
        self._sync_gauges(now, self.sim.counters)
        self.metrics.sample(now)
        self._last_sample_t = now

    def _sync_gauges(
        self,
        now: int,
        counters: Any,
        in_flight: Optional[int] = None,
        profit: Optional[float] = None,
    ) -> None:
        metrics = self.metrics
        metrics.gauge("queue_depth").set(self.queue.depth)
        if in_flight is None:
            in_flight = self.in_flight
        if profit is None:
            profit = self.sim.profit_so_far()
        metrics.gauge("in_flight").set(in_flight)
        metrics.gauge("completed_total").set(counters.completions)
        metrics.gauge("expired_total").set(counters.expiries)
        metrics.gauge("profit_total").set(profit)
        metrics.gauge("profit_rate").set(profit / now if now > 0 else 0.0)
        allocated = counters.allocated_steps
        metrics.gauge("utilization").set(
            counters.busy_steps / allocated if allocated > 0 else 0.0
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"t={self.sim.now}" if self.sim.started else "idle"
        return (
            f"SchedulingService(m={self.sim.m}, {state}, "
            f"queue={self.queue.depth}/{self.queue.capacity}, "
            f"shed={len(self.shed_log)})"
        )
