"""Lightweight metrics for the scheduling service.

A :class:`MetricsRegistry` holds named counters (monotone totals:
admissions, sheds, completions) and gauges (instantaneous values: queue
depth, jobs in flight, utilization).  The service samples the registry
at decision points; each sample is a flat dict stamped with simulated
time, retained in memory and/or streamed to a JSONL sink, so a metrics
log can be tailed live or post-processed with any JSON tooling.

No external dependencies, no threads, no wall-clock: simulated time is
the only clock, which keeps telemetry deterministic and replayable.
"""

from __future__ import annotations

import json
import os
from typing import Any, IO, Iterable, Optional

#: Gauges that are averaged (not summed) by :func:`merge_registries` --
#: ratios and rates, where summing across shards is meaningless.
MEAN_GAUGES: tuple[str, ...] = ("utilization", "profit_rate")


class Counter:
    """Monotone accumulator (floats allowed -- profit is a counter too)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """Instantaneous value, overwritten at every observation."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class MetricsRegistry:
    """Named counters and gauges with time-stamped sampling.

    Parameters
    ----------
    sink:
        Optional text file-like object; every sample is written to it as
        one JSON line immediately (streaming export).
    keep_samples:
        Retain samples in :attr:`samples` (default).  Disable for long
        runs that only stream to a sink.
    """

    def __init__(
        self, sink: Optional[IO[str]] = None, keep_samples: bool = True
    ) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Any] = {}
        self._mean_counts: dict[str, int] = {}
        self.sink = sink
        self.keep_samples = bool(keep_samples)
        #: retained samples, one flat dict per call to :meth:`sample`
        self.samples: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get (or lazily create) the counter called ``name``."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get (or lazily create) the gauge called ``name``."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, capacity: int = 1024) -> Any:
        """Get (or lazily create) the ring histogram called ``name``.

        Histograms (see
        :class:`~repro.observability.metrics.RingHistogram`) record
        distributions -- decision latency, queue depth, restart
        duration -- that counters and gauges flatten away.  They stay
        out of :meth:`values`, :meth:`sample` and :meth:`state_to_dict`
        deliberately: samples and checkpoints remain bit-identical
        whether or not anything observes a histogram.
        """
        metric = self._histograms.get(name)
        if metric is None:
            from repro.observability.metrics import RingHistogram

            metric = self._histograms[name] = RingHistogram(
                name, capacity=capacity
            )
        return metric

    def histograms(self) -> dict[str, dict[str, Any]]:
        """Summaries of every histogram (see ``RingHistogram.summary``)."""
        return {
            name: self._histograms[name].summary()
            for name in sorted(self._histograms)
        }

    def values(self) -> dict[str, float]:
        """Current value of every metric, counters before gauges."""
        out: dict[str, float] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].value
        return out

    # ------------------------------------------------------------------
    def sample(self, t: int) -> dict[str, Any]:
        """Snapshot every metric at simulated time ``t``.

        The sample is appended to :attr:`samples` (when retained) and
        written to the sink (when set); it is also returned.
        """
        record: dict[str, Any] = {"t": int(t)}
        record.update(self.values())
        if self.keep_samples:
            self.samples.append(record)
        if self.sink is not None:
            self.sink.write(json.dumps(record) + "\n")
        return record

    def to_jsonl(self) -> str:
        """Render all retained samples as a JSONL string."""
        return "".join(json.dumps(s) + "\n" for s in self.samples)

    def write_jsonl(self, path: str) -> None:
        """Write all retained samples to a JSONL file, crash-safely.

        The samples are rendered into a sibling temp file which is
        fsynced, then atomically renamed over ``path`` (``os.replace``)
        and the containing directory fsynced, so a process killed
        mid-export -- a faulted cluster shard, a SIGKILLed service, a
        power cut -- never leaves a truncated or corrupt file behind:
        readers see either the previous complete file or the new one,
        and the rename itself is durable.
        """
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(self.to_jsonl())
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # make the rename durable: fsync the directory entry too
        parent = os.path.dirname(os.path.abspath(path))
        try:
            fd = os.open(parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync on dirs unsupported
            pass
        finally:
            os.close(fd)

    def merge_from(
        self,
        other: "MetricsRegistry",
        *,
        mean_gauges: Iterable[str] = MEAN_GAUGES,
    ) -> None:
        """Fold ``other``'s metric values into this registry.

        Counters add.  Gauges add too -- queue depths, in-flight counts
        and completion totals across shards are naturally additive --
        except the names in ``mean_gauges`` (ratios/rates), which are
        accumulated so that :func:`merge_registries` can average them.
        Histograms merge exactly in their lifetime aggregates and keep
        the newest ``capacity`` windowed observations (see
        :meth:`~repro.observability.metrics.RingHistogram.merge_from`),
        so a cluster roll-up can report p50/p99 admission latency and
        queue depth without a parallel metrics path.  Samples are log
        output, not state, and are not merged.
        """
        mean = set(mean_gauges)
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            mine = self.gauge(name)
            mine.set(mine.value + gauge.value)
        for name, hist in other._histograms.items():
            self.histogram(name, capacity=hist.capacity).merge_from(hist)
        # remember how many registries fed each mean gauge so the final
        # averaging in merge_registries can divide correctly
        for name in mean:
            if name in other._gauges:
                self._mean_counts[name] = self._mean_counts.get(name, 0) + 1

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_to_dict(self) -> dict[str, Any]:
        """Serialize metric values (samples are log output, not state)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
        }

    def restore_from_dict(self, data: dict[str, Any]) -> None:
        """Restore metric values from :meth:`state_to_dict` output."""
        for name, value in data["counters"].items():
            self.counter(name).value = float(value)
        for name, value in data["gauges"].items():
            self.gauge(name).set(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, samples={len(self.samples)})"
        )


def merge_registries(
    registries: Iterable["MetricsRegistry"],
    *,
    mean_gauges: Iterable[str] = MEAN_GAUGES,
) -> MetricsRegistry:
    """Roll per-shard registries up into one cluster-level view.

    Returns a fresh registry where every counter is the sum over the
    inputs, every gauge is the sum, and the gauges named in
    ``mean_gauges`` (default :data:`MEAN_GAUGES` -- ratios and rates)
    are the mean over the registries that define them.  The inputs are
    not modified.

    >>> a, b = MetricsRegistry(), MetricsRegistry()
    >>> a.counter("completed_total").inc(3); a.gauge("utilization").set(0.5)
    >>> b.counter("completed_total").inc(4); b.gauge("utilization").set(1.0)
    >>> merged = merge_registries([a, b])
    >>> merged.values()
    {'completed_total': 7.0, 'utilization': 0.75}
    """
    # Materialize once: a single-use iterator passed as ``mean_gauges``
    # would otherwise be exhausted by the first merge_from's set() call,
    # silently dropping the mean roll-up (and its count bookkeeping) for
    # every later registry.
    mean_gauges = frozenset(mean_gauges)
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge_from(registry, mean_gauges=mean_gauges)
    for name, count in merged._mean_counts.items():
        if count > 1:
            gauge = merged.gauge(name)
            gauge.set(gauge.value / count)
    merged._mean_counts = {}
    return merged
