"""Submission logging and deterministic replay.

A :class:`SubmissionLog` records every ``(time, spec)`` submission a
service receives.  Because the whole stack is deterministic -- integer
simulated time, deterministic shed policies, deterministic engine --
re-driving a log through an identically configured service reproduces
the run exactly.  Combined with :mod:`repro.service.snapshot` this
gives the kill-and-restore harness: run to a checkpoint, snapshot,
*throw the process away*, restore, re-drive the tail of the log, and
verify profit is bit-identical to the uninterrupted run.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator, Optional

from repro.service.service import SchedulingService, ServiceResult
from repro.service.snapshot import service_from_dict, service_to_dict
from repro.sim.jobs import JobSpec
from repro.sim.scheduler import Scheduler
from repro.workloads.serialize import spec_from_dict, spec_to_dict


class SubmissionLog:
    """Append-only record of ``(time, spec)`` submissions."""

    def __init__(self) -> None:
        self.entries: list[tuple[int, JobSpec]] = []

    def record(self, t: int, spec: JobSpec) -> int:
        """Append one submission (called by the service when attached
        as its ``recorder``); returns the entry's log index."""
        self.entries.append((int(t), spec))
        return len(self.entries) - 1

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[int, JobSpec]]:
        return iter(self.entries)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialize the log to a JSON-compatible dict."""
        return {
            "entries": [
                {"t": t, "spec": spec_to_dict(spec)} for t, spec in self.entries
            ]
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SubmissionLog":
        """Rebuild a log from :meth:`to_dict` output."""
        log = cls()
        for entry in data["entries"]:
            log.entries.append((int(entry["t"]), spec_from_dict(entry["spec"])))
        return log

    def save(self, path: str) -> None:
        """Write the log to a JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)

    @classmethod
    def load(cls, path: str) -> "SubmissionLog":
        """Read a log from a JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def drive(
    service: SchedulingService,
    log: SubmissionLog,
    *,
    start_index: int = 0,
    stop_time: Optional[int] = None,
) -> int:
    """Feed log entries ``[start_index:]`` into ``service``.

    Stops before the first entry with ``t >= stop_time`` (when given)
    and returns the index of the first entry *not* fed -- pass it back
    as ``start_index`` to resume after a checkpoint.
    """
    entries = log.entries
    for i in range(start_index, len(entries)):
        t, spec = entries[i]
        if stop_time is not None and t >= stop_time:
            return i
        service.submit(spec, t=t)
    return len(entries)


def replay(
    log: SubmissionLog, make_service: Callable[[], SchedulingService]
) -> ServiceResult:
    """Re-drive a full log through a freshly built service."""
    service = make_service()
    service.start()
    drive(service, log)
    return service.finish()


def checkpoint_roundtrip(
    log: SubmissionLog,
    make_service: Callable[[], SchedulingService],
    make_scheduler: Callable[[], Scheduler],
    checkpoint_time: int,
) -> ServiceResult:
    """Kill-and-restore harness: run to a checkpoint, serialize through
    JSON text (simulating process death), restore into fresh objects,
    re-drive the rest of the log and finish.

    ``make_service`` must build the same configuration the log was
    recorded against; ``make_scheduler`` must build a fresh scheduler of
    the same type.  The returned result should be bit-identical to
    :func:`replay` of the full log.
    """
    first = make_service()
    first.start()
    resume_index = drive(first, log, stop_time=checkpoint_time)
    if first.now < checkpoint_time:
        first.advance_to(checkpoint_time)
    blob = json.dumps(service_to_dict(first))
    del first  # the "killed" process

    restored = service_from_dict(json.loads(blob), make_scheduler())
    drive(restored, log, start_index=resume_index)
    return restored.finish()
