"""Structural and runtime validation for DAG jobs.

:func:`validate_structure` re-derives every invariant a
:class:`~repro.dag.graph.DAGStructure` is supposed to establish at
construction time; it is used by tests, by loaders of externally supplied
DAGs, and by the engine's optional paranoid mode.
"""

from __future__ import annotations

import numpy as np

from repro.dag.graph import DAGStructure
from repro.dag.job import DAGJob
from repro.dag.node import NodeState


class ValidationError(AssertionError):
    """A DAG structure or job state violated a model invariant."""


def validate_structure(structure: DAGStructure) -> None:
    """Check all structural invariants; raise :class:`ValidationError`.

    Invariants checked:

    * node works are positive and finite;
    * successor/predecessor adjacency agree;
    * the stored topological order is a valid permutation that respects
      every edge;
    * ``span <= total_work`` and ``span >= max node work``;
    * ``total_work`` equals the sum of node works.
    """
    n = structure.num_nodes
    if n < 1:
        raise ValidationError("structure has no nodes")
    work = structure.work
    if not np.all(np.isfinite(work)) or np.any(work <= 0):
        raise ValidationError("node works must be positive and finite")

    for u in range(n):
        for v in structure.successors(u):
            if u not in structure.predecessors(v):
                raise ValidationError(f"edge ({u},{v}) missing from predecessor map")
    for v in range(n):
        for u in structure.predecessors(v):
            if v not in structure.successors(u):
                raise ValidationError(f"edge ({u},{v}) missing from successor map")

    topo = structure.topological_order()
    if sorted(topo) != list(range(n)):
        raise ValidationError("topological order is not a permutation of nodes")
    position = {node: i for i, node in enumerate(topo)}
    for u, v in structure.edges():
        if position[u] >= position[v]:
            raise ValidationError(f"edge ({u},{v}) violates topological order")

    if structure.span > structure.total_work + 1e-9:
        raise ValidationError("span exceeds total work")
    if structure.span < float(work.max()) - 1e-9:
        raise ValidationError("span below maximum node work")
    if abs(structure.total_work - float(work.sum())) > 1e-9:
        raise ValidationError("total_work does not match sum of node works")


def validate_job_state(job: DAGJob) -> None:
    """Check a job's runtime state is internally consistent.

    * every READY/RUNNING node has all predecessors DONE;
    * every PENDING node has some unfinished predecessor;
    * the ready set contains exactly the READY/RUNNING nodes;
    * DONE nodes have zero remaining work, others positive;
    * completion counters match node states.
    """
    struct = job.structure
    ready = set(job.ready_nodes())
    done = 0
    for node in range(struct.num_nodes):
        state = job.node_state(node)
        preds_done = all(
            job.node_state(p) == NodeState.DONE for p in struct.predecessors(node)
        )
        if state in (NodeState.READY, NodeState.RUNNING):
            if not preds_done:
                raise ValidationError(f"node {node} ready but predecessors unfinished")
            if node not in ready:
                raise ValidationError(f"node {node} executable but not in ready set")
        elif state == NodeState.PENDING:
            if preds_done and struct.predecessors(node):
                raise ValidationError(f"node {node} pending with all predecessors done")
            if not struct.predecessors(node):
                raise ValidationError(f"source node {node} should never be pending")
            if node in ready:
                raise ValidationError(f"pending node {node} in ready set")
        else:  # DONE
            done += 1
            if node in ready:
                raise ValidationError(f"done node {node} in ready set")
            if job.node_remaining(node) != 0.0:
                raise ValidationError(f"done node {node} has remaining work")
        if state != NodeState.DONE and job.node_remaining(node) <= 0.0:
            raise ValidationError(f"unfinished node {node} has no remaining work")
    if done != job.completed_nodes:
        raise ValidationError("completed-node counter out of sync")
    if job.is_complete() != (done == struct.num_nodes):
        raise ValidationError("is_complete inconsistent with node states")
