"""Mutable execution state of one DAG job.

:class:`DAGJob` layers runtime state (remaining work per node, readiness,
completion) over an immutable :class:`repro.dag.graph.DAGStructure`.  The
simulation engine is the only component that mutates it; schedulers see
jobs through :class:`repro.sim.jobs.JobView`, which enforces the paper's
semi-non-clairvoyance (only ``W``, ``L`` and the *number* of ready nodes
are visible -- never the topology).

Hot-path layout
---------------
The engine touches per-node state once per executing node per decision,
so this class is deliberately *not* numpy-backed: scalar indexing of
numpy arrays and :class:`~repro.dag.node.NodeState` enum round-trips
cost roughly an order of magnitude more than plain ``list`` reads, and
the arrays never get large enough for vectorization to win back the
difference.  State lives in Python lists of floats/ints; readiness is
maintained *incrementally* via per-node remaining-predecessor counters
(``_unmet``) updated on node completion, and the ready set is an
insertion-ordered dict so pickers see nodes in became-ready order.
Aggregate queries that predate the rewrite (:meth:`remaining_work`)
reproduce the original numpy summation order bit-for-bit.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Sequence

import numpy as np

from repro.dag.graph import DAGStructure
from repro.dag.node import NodeState

# Int values of NodeState, inlined for hot-path comparisons.
_PENDING = int(NodeState.PENDING)
_READY = int(NodeState.READY)
_RUNNING = int(NodeState.RUNNING)
_DONE = int(NodeState.DONE)

#: Residual work at or below this is snapped to zero (float-drift guard).
_RESIDUE = 1e-12


class DAGJob:
    """Runtime instance of a DAG job.

    The engine drives a job through three operations:

    * :meth:`ready_nodes` -- which nodes may execute right now;
    * :meth:`process_many` -- deplete work from the executing node set
      and unlock successors of completed nodes (the batched form of
      :meth:`process`);
    * :meth:`is_complete` -- all nodes done.

    Work depletion is fractional (preemption at any step boundary), but
    readiness changes only when a node's remaining work hits zero,
    matching the paper's model where a node is a sequential instruction
    block.
    """

    __slots__ = (
        "structure",
        "_n",
        "_succ",
        "_works",
        "_remaining",
        "_unmet",
        "_state",
        "_ready",
        "_done_count",
        "_done_work",
        "ready_version",
    )

    def __init__(self, structure: DAGStructure) -> None:
        self.structure = structure
        self._n = structure.num_nodes
        # read-only alias of the structure's successor table; completion
        # unlocking walks it once per finished node
        self._succ = structure._succ
        works = structure.work_list
        self._works = works
        self._remaining: list[float] = list(works)
        self._unmet: list[int] = list(structure.indegree_list)
        state = [_PENDING] * structure.num_nodes
        self._ready: dict[int, None] = dict.fromkeys(structure.initial_ready)
        for i in self._ready:
            state[i] = _READY
        self._state: list[int] = state
        self._done_count = 0
        self._done_work = 0.0
        #: Bumped whenever the ready set's membership changes.  The engine
        #: uses it to reuse a previous FIFO pick when nothing changed.
        self.ready_version = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_work(self) -> float:
        """Total work :math:`W` of the job."""
        return self.structure.total_work

    @property
    def span(self) -> float:
        """Critical-path length :math:`L` of the job."""
        return self.structure.span

    def ready_nodes(self) -> tuple[int, ...]:
        """Node ids currently allowed to execute (READY or RUNNING)."""
        return tuple(self._ready)

    def num_ready(self) -> int:
        """How many nodes may execute right now."""
        return len(self._ready)

    def is_ready(self, node: int) -> bool:
        """O(1) membership test against the current ready set."""
        return node in self._ready

    def node_state(self, node: int) -> NodeState:
        """Current state of ``node``."""
        return NodeState(self._state[node])

    def node_remaining(self, node: int) -> float:
        """Remaining work of ``node``."""
        return self._remaining[node]

    def first_ready(self, k: int) -> list[int]:
        """The first ``min(k, num_ready)`` ready nodes in became-ready
        order -- the FIFO pick, without materializing the full ready
        tuple (the engine's fast path for the default picker)."""
        ready = self._ready
        if len(ready) <= k:
            return list(ready)
        return list(islice(ready, k))

    def min_remaining(self, nodes: Sequence[int]) -> float:
        """Smallest remaining work among ``nodes`` (next completion)."""
        return min(map(self._remaining.__getitem__, nodes))

    def remaining_work(self) -> float:
        """Total unprocessed work across all nodes."""
        return float(self.structure.total_work - self._done_work - self._processed_partial())

    def _processed_partial(self) -> float:
        # Work already removed from not-yet-done nodes.  Reproduces the
        # original masked-numpy computation (pairwise summation order
        # included) so laxity-based schedulers observe identical floats.
        state = self._state
        idx = [i for i, s in enumerate(state) if s != _DONE]
        if not idx:
            return 0.0
        remaining = self._remaining
        rem_arr = np.fromiter((remaining[i] for i in idx), dtype=np.float64, count=len(idx))
        return float((self.structure.work[idx] - rem_arr).sum())

    def remaining_span(self) -> float:
        """Longest remaining path weight over unfinished nodes.

        This is the quantity Observation 1 tracks: when all ready nodes
        execute at speed ``s``, it decreases at rate ``s``.  Computed on
        demand (O(nodes + edges)); used by diagnostics and tests, not by
        the engine's hot path.
        """
        struct = self.structure
        state = self._state
        remaining = self._remaining
        dist = np.zeros(struct.num_nodes, dtype=np.float64)
        for u in reversed(struct.topological_order()):
            if state[u] == _DONE:
                continue
            best = 0.0
            for v in struct.successors(u):
                if state[v] != _DONE and dist[v] > best:
                    best = dist[v]
            dist[u] = best + remaining[u]
        return float(dist.max()) if struct.num_nodes else 0.0

    def is_complete(self) -> bool:
        """Whether every node of the DAG has been processed."""
        return self._done_count == self._n

    @property
    def completed_nodes(self) -> int:
        """Number of DONE nodes."""
        return self._done_count

    # ------------------------------------------------------------------
    # Mutation (engine only)
    # ------------------------------------------------------------------
    def mark_running(self, nodes: Iterable[int]) -> None:
        """Flag ``nodes`` as RUNNING (must currently be executable)."""
        state = self._state
        for node in nodes:
            s = state[node]
            if s != _READY and s != _RUNNING:
                raise ValueError(
                    f"node {node} in state {NodeState(s).name} cannot run"
                )
            state[node] = _RUNNING

    def mark_preempted(self, nodes: Iterable[int]) -> None:
        """Return RUNNING ``nodes`` to READY (preemption)."""
        state = self._state
        for node in nodes:
            if state[node] == _RUNNING:
                state[node] = _READY

    def process(self, node: int, amount: float) -> bool:
        """Deplete ``amount`` work from ``node``; return True on completion.

        Completion unlocks successors whose other predecessors are all
        done, appending them to the ready set in successor order (the
        pick *policy* that chooses among ready nodes lives in
        :mod:`repro.sim.picker`, not here).
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        s = self._state[node]
        if s != _READY and s != _RUNNING:
            raise ValueError(
                f"cannot process node {node} in state {NodeState(s).name}"
            )
        rem = self._remaining[node] - amount
        # Guard against float drift: snap tiny residues to done.
        if rem <= _RESIDUE:
            rem = 0.0
        self._remaining[node] = rem
        if rem > 0.0:
            return False
        self._complete_node(node)
        return True

    def process_many(self, nodes: Sequence[int], amount: float) -> int:
        """Deplete ``amount`` from each of ``nodes`` in order; return the
        number of nodes completed.

        Semantically identical to calling :meth:`process` per node (the
        nodes of one allocation are distinct, so depletions are
        independent and successors unlock in the same order), but one
        call per executing job instead of one per node -- the engine's
        chunk execution runs through here, with :meth:`_complete_node`
        inlined.

        Precondition: every node is executable (READY or RUNNING).  The
        engine guarantees this -- :meth:`mark_running` validates the node
        set at allocation time, so re-checking here would only re-verify
        the engine's own invariant once per node per chunk.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        state = self._state
        remaining = self._remaining
        ready = self._ready
        works = self._works
        unmet = self._unmet
        succ = self._succ
        completed = 0
        for node in nodes:
            rem = remaining[node] - amount
            if rem > _RESIDUE:
                remaining[node] = rem
                continue
            remaining[node] = 0.0
            state[node] = _DONE
            # done_work accumulates per node, in completion order, so
            # laxity observers see the exact historical float sum
            self._done_work += works[node]
            completed += 1
            del ready[node]
            for v in succ[node]:
                u = unmet[v] - 1
                unmet[v] = u
                if u == 0:
                    state[v] = _READY
                    ready[v] = None
        if completed:
            self._done_count += completed
            self.ready_version += 1
        return completed

    def _complete_node(self, node: int) -> None:
        state = self._state
        unmet = self._unmet
        state[node] = _DONE
        self._done_count += 1
        self._done_work += self._works[node]
        self.ready_version += 1
        del self._ready[node]
        for v in self._succ[node]:
            unmet[v] -= 1
            if unmet[v] == 0:
                state[v] = _READY
                self._ready[v] = None

    def add_overhead(self, node: int, amount: float) -> None:
        """Charge preemption overhead to an unfinished node.

        Models context-switch cost: remaining work grows by ``amount``,
        capped at the node's original work (a node never costs more
        than a cold restart).  No-op on DONE nodes.
        """
        if amount < 0:
            raise ValueError("overhead must be non-negative")
        if self._state[node] == _DONE:
            return
        original = self._works[node]
        self._remaining[node] = min(original, self._remaining[node] + amount)

    # ------------------------------------------------------------------
    # Checkpointing (see repro.sim.engine / repro.service.snapshot)
    # ------------------------------------------------------------------
    def runtime_state_to_dict(self) -> dict:
        """Snapshot the mutable execution state to a JSON-compatible dict.

        Together with the immutable structure this fully determines the
        job (:meth:`from_runtime_state` inverts it).  ``done_work`` is
        stored rather than recomputed so the float accumulation order of
        the original run is preserved exactly (bit-identical
        ``remaining_work`` after a restore).
        """
        return {
            "remaining": [float(w) for w in self._remaining],
            "state": [int(s) for s in self._state],
            "ready": [int(n) for n in self._ready],
            "done_work": float(self._done_work),
        }

    @classmethod
    def from_runtime_state(cls, structure: DAGStructure, data: dict) -> "DAGJob":
        """Rebuild a job from a structure and a
        :meth:`runtime_state_to_dict` snapshot.

        The ready set's insertion order is restored verbatim -- order-
        sensitive pickers (FIFO/LIFO) depend on it for deterministic
        replay.
        """
        job = cls(structure)
        n = structure.num_nodes
        remaining = [float(w) for w in data["remaining"]]
        states = [int(s) for s in data["state"]]
        if len(remaining) != n or len(states) != n:
            raise ValueError("runtime state does not match structure size")
        job._remaining = remaining
        job._state = states
        job._ready = {int(node): None for node in data["ready"]}
        job.ready_version += 1
        unmet = list(structure.indegree_list)
        done_count = 0
        for u in range(n):
            if states[u] == _DONE:
                done_count += 1
                for v in structure.successors(u):
                    unmet[v] -= 1
        job._unmet = unmet
        job._done_count = done_count
        job._done_work = float(data["done_work"])
        for node in job._ready:
            if not NodeState(states[node]).is_executable():
                raise ValueError(f"ready node {node} has non-executable state")
        return job

    def reset(self) -> None:
        """Restore the job to its initial (unexecuted) state."""
        struct = self.structure
        self._remaining[:] = self._works
        self._unmet = list(struct.indegree_list)
        state = [_PENDING] * struct.num_nodes
        self._ready = dict.fromkeys(struct.initial_ready)
        for i in self._ready:
            state[i] = _READY
        self._state = state
        self._done_count = 0
        self._done_work = 0.0
        self.ready_version += 1

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DAGJob({self.structure.name!r}, done={self._done_count}/"
            f"{self.structure.num_nodes}, ready={len(self._ready)})"
        )
