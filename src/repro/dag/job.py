"""Mutable execution state of one DAG job.

:class:`DAGJob` layers runtime state (remaining work per node, readiness,
completion) over an immutable :class:`repro.dag.graph.DAGStructure`.  The
simulation engine is the only component that mutates it; schedulers see
jobs through :class:`repro.sim.jobs.JobView`, which enforces the paper's
semi-non-clairvoyance (only ``W``, ``L`` and the *number* of ready nodes
are visible -- never the topology).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.dag.graph import DAGStructure
from repro.dag.node import NodeState


class DAGJob:
    """Runtime instance of a DAG job.

    The engine drives a job through three operations:

    * :meth:`ready_nodes` -- which nodes may execute right now;
    * :meth:`process` -- deplete work from a set of executing nodes and
      unlock their successors on completion;
    * :meth:`is_complete` -- all nodes done.

    Work depletion is fractional (preemption at any step boundary), but
    readiness changes only when a node's remaining work hits zero,
    matching the paper's model where a node is a sequential instruction
    block.
    """

    __slots__ = (
        "structure",
        "_remaining",
        "_unmet",
        "_state",
        "_ready",
        "_done_count",
        "_done_work",
    )

    def __init__(self, structure: DAGStructure) -> None:
        self.structure = structure
        n = structure.num_nodes
        self._remaining = structure.work.copy()
        self._unmet = np.fromiter(
            (structure.indegree(i) for i in range(n)), dtype=np.int64, count=n
        )
        self._state = np.full(n, NodeState.PENDING, dtype=np.int8)
        self._ready: dict[int, None] = {}
        for i in structure.topological_order():
            if self._unmet[i] == 0:
                self._state[i] = NodeState.READY
                self._ready[i] = None
        self._done_count = 0
        self._done_work = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_work(self) -> float:
        """Total work :math:`W` of the job."""
        return self.structure.total_work

    @property
    def span(self) -> float:
        """Critical-path length :math:`L` of the job."""
        return self.structure.span

    def ready_nodes(self) -> tuple[int, ...]:
        """Node ids currently allowed to execute (READY or RUNNING)."""
        return tuple(self._ready)

    def num_ready(self) -> int:
        """How many nodes may execute right now."""
        return len(self._ready)

    def node_state(self, node: int) -> NodeState:
        """Current state of ``node``."""
        return NodeState(self._state[node])

    def node_remaining(self, node: int) -> float:
        """Remaining work of ``node``."""
        return float(self._remaining[node])

    def remaining_work(self) -> float:
        """Total unprocessed work across all nodes."""
        return float(self.structure.total_work - self._done_work - self._processed_partial())

    def _processed_partial(self) -> float:
        # Work already removed from not-yet-done nodes.
        mask = self._state != NodeState.DONE
        return float((self.structure.work[mask] - self._remaining[mask]).sum())

    def remaining_span(self) -> float:
        """Longest remaining path weight over unfinished nodes.

        This is the quantity Observation 1 tracks: when all ready nodes
        execute at speed ``s``, it decreases at rate ``s``.  Computed on
        demand (O(nodes + edges)); used by diagnostics and tests, not by
        the engine's hot path.
        """
        struct = self.structure
        dist = np.zeros(struct.num_nodes, dtype=np.float64)
        for u in reversed(struct.topological_order()):
            if self._state[u] == NodeState.DONE:
                continue
            best = 0.0
            for v in struct.successors(u):
                if self._state[v] != NodeState.DONE and dist[v] > best:
                    best = dist[v]
            dist[u] = best + self._remaining[u]
        return float(dist.max()) if struct.num_nodes else 0.0

    def is_complete(self) -> bool:
        """Whether every node of the DAG has been processed."""
        return self._done_count == self.structure.num_nodes

    @property
    def completed_nodes(self) -> int:
        """Number of DONE nodes."""
        return self._done_count

    # ------------------------------------------------------------------
    # Mutation (engine only)
    # ------------------------------------------------------------------
    def mark_running(self, nodes: Iterable[int]) -> None:
        """Flag ``nodes`` as RUNNING (must currently be executable)."""
        for node in nodes:
            if not NodeState(self._state[node]).is_executable():
                raise ValueError(
                    f"node {node} in state {NodeState(self._state[node]).name} "
                    "cannot run"
                )
            self._state[node] = NodeState.RUNNING

    def mark_preempted(self, nodes: Iterable[int]) -> None:
        """Return RUNNING ``nodes`` to READY (preemption)."""
        for node in nodes:
            if self._state[node] == NodeState.RUNNING:
                self._state[node] = NodeState.READY

    def process(self, node: int, amount: float) -> bool:
        """Deplete ``amount`` work from ``node``; return True on completion.

        Completion unlocks successors whose other predecessors are all
        done, appending them to the ready set in successor order (the
        pick *policy* that chooses among ready nodes lives in
        :mod:`repro.sim.picker`, not here).
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        state = NodeState(self._state[node])
        if not state.is_executable():
            raise ValueError(f"cannot process node {node} in state {state.name}")
        rem = self._remaining[node] - amount
        # Guard against float drift: snap tiny residues to done.
        if rem <= 1e-12:
            rem = 0.0
        self._remaining[node] = rem
        if rem > 0.0:
            return False
        self._complete_node(node)
        return True

    def _complete_node(self, node: int) -> None:
        self._state[node] = NodeState.DONE
        self._done_count += 1
        self._done_work += float(self.structure.work[node])
        del self._ready[node]
        for v in self.structure.successors(node):
            self._unmet[v] -= 1
            if self._unmet[v] == 0:
                self._state[v] = NodeState.READY
                self._ready[v] = None

    def add_overhead(self, node: int, amount: float) -> None:
        """Charge preemption overhead to an unfinished node.

        Models context-switch cost: remaining work grows by ``amount``,
        capped at the node's original work (a node never costs more
        than a cold restart).  No-op on DONE nodes.
        """
        if amount < 0:
            raise ValueError("overhead must be non-negative")
        if self._state[node] == NodeState.DONE:
            return
        original = float(self.structure.work[node])
        self._remaining[node] = min(original, self._remaining[node] + amount)

    # ------------------------------------------------------------------
    # Checkpointing (see repro.sim.engine / repro.service.snapshot)
    # ------------------------------------------------------------------
    def runtime_state_to_dict(self) -> dict:
        """Snapshot the mutable execution state to a JSON-compatible dict.

        Together with the immutable structure this fully determines the
        job (:meth:`from_runtime_state` inverts it).  ``done_work`` is
        stored rather than recomputed so the float accumulation order of
        the original run is preserved exactly (bit-identical
        ``remaining_work`` after a restore).
        """
        return {
            "remaining": [float(w) for w in self._remaining],
            "state": [int(s) for s in self._state],
            "ready": [int(n) for n in self._ready],
            "done_work": float(self._done_work),
        }

    @classmethod
    def from_runtime_state(cls, structure: DAGStructure, data: dict) -> "DAGJob":
        """Rebuild a job from a structure and a
        :meth:`runtime_state_to_dict` snapshot.

        The ready set's insertion order is restored verbatim -- order-
        sensitive pickers (FIFO/LIFO) depend on it for deterministic
        replay.
        """
        job = cls(structure)
        n = structure.num_nodes
        remaining = np.asarray(data["remaining"], dtype=np.float64)
        states = np.asarray(data["state"], dtype=np.int8)
        if len(remaining) != n or len(states) != n:
            raise ValueError("runtime state does not match structure size")
        job._remaining = remaining
        job._state = states
        job._ready = {int(node): None for node in data["ready"]}
        unmet = np.fromiter(
            (structure.indegree(i) for i in range(n)), dtype=np.int64, count=n
        )
        done_count = 0
        for u in range(n):
            if states[u] == NodeState.DONE:
                done_count += 1
                for v in structure.successors(u):
                    unmet[v] -= 1
        job._unmet = unmet
        job._done_count = done_count
        job._done_work = float(data["done_work"])
        for node in job._ready:
            if not NodeState(states[node]).is_executable():
                raise ValueError(f"ready node {node} has non-executable state")
        return job

    def reset(self) -> None:
        """Restore the job to its initial (unexecuted) state."""
        struct = self.structure
        n = struct.num_nodes
        self._remaining[:] = struct.work
        for i in range(n):
            self._unmet[i] = struct.indegree(i)
        self._state[:] = NodeState.PENDING
        self._ready.clear()
        for i in struct.topological_order():
            if self._unmet[i] == 0:
                self._state[i] = NodeState.READY
                self._ready[i] = None
        self._done_count = 0
        self._done_work = 0.0

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DAGJob({self.structure.name!r}, done={self._done_count}/"
            f"{self.structure.num_nodes}, ready={len(self._ready)})"
        )
