"""Serialization of DAG structures (dict / JSON / Graphviz DOT).

The dict format is versioned so saved workloads stay loadable:

.. code-block:: python

    {"version": 1, "name": "fig1", "work": [...], "edges": [[u, v], ...]}
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.dag.graph import DAGStructure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.job import DAGJob

FORMAT_VERSION = 1


def structure_to_dict(structure: DAGStructure) -> dict[str, Any]:
    """Serialize a structure to a plain JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "name": structure.name,
        "work": [float(w) for w in structure.work],
        "edges": [[u, v] for u, v in structure.edges()],
    }


def structure_from_dict(data: dict[str, Any]) -> DAGStructure:
    """Rebuild a structure from :func:`structure_to_dict` output."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported DAG format version {version}")
    return DAGStructure(
        data["work"],
        [(int(u), int(v)) for u, v in data.get("edges", ())],
        name=data.get("name", "dag"),
    )


def structure_to_json(structure: DAGStructure, indent: int | None = None) -> str:
    """Serialize a structure to a JSON string."""
    return json.dumps(structure_to_dict(structure), indent=indent)


def structure_from_json(text: str) -> DAGStructure:
    """Rebuild a structure from :func:`structure_to_json` output."""
    return structure_from_dict(json.loads(text))


def job_to_dict(job: "DAGJob") -> dict[str, Any]:
    """Serialize a (possibly partially executed) :class:`DAGJob`:
    structure plus runtime execution state, for checkpointing."""
    return {
        "version": FORMAT_VERSION,
        "structure": structure_to_dict(job.structure),
        "runtime": job.runtime_state_to_dict(),
    }


def job_from_dict(data: dict[str, Any]) -> "DAGJob":
    """Rebuild a :class:`DAGJob` from :func:`job_to_dict` output."""
    from repro.dag.job import DAGJob

    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported DAG job format version {version}")
    structure = structure_from_dict(data["structure"])
    return DAGJob.from_runtime_state(structure, data["runtime"])


def structure_to_dot(structure: DAGStructure) -> str:
    """Export to Graphviz DOT, labeling nodes ``id (work)``."""
    lines = [f'digraph "{structure.name}" {{']
    for i in range(structure.num_nodes):
        lines.append(f'  n{i} [label="{i} ({structure.work[i]:g})"];')
    for u, v in structure.edges():
        lines.append(f"  n{u} -> n{v};")
    lines.append("}")
    return "\n".join(lines)
