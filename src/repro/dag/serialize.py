"""Serialization of DAG structures (dict / JSON / Graphviz DOT).

The dict format is versioned so saved workloads stay loadable:

.. code-block:: python

    {"version": 1, "name": "fig1", "work": [...], "edges": [[u, v], ...]}
"""

from __future__ import annotations

import json
from typing import Any

from repro.dag.graph import DAGStructure

FORMAT_VERSION = 1


def structure_to_dict(structure: DAGStructure) -> dict[str, Any]:
    """Serialize a structure to a plain JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "name": structure.name,
        "work": [float(w) for w in structure.work],
        "edges": [[u, v] for u, v in structure.edges()],
    }


def structure_from_dict(data: dict[str, Any]) -> DAGStructure:
    """Rebuild a structure from :func:`structure_to_dict` output."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported DAG format version {version}")
    return DAGStructure(
        data["work"],
        [(int(u), int(v)) for u, v in data.get("edges", ())],
        name=data.get("name", "dag"),
    )


def structure_to_json(structure: DAGStructure, indent: int | None = None) -> str:
    """Serialize a structure to a JSON string."""
    return json.dumps(structure_to_dict(structure), indent=indent)


def structure_from_json(text: str) -> DAGStructure:
    """Rebuild a structure from :func:`structure_to_json` output."""
    return structure_from_dict(json.loads(text))


def structure_to_dot(structure: DAGStructure) -> str:
    """Export to Graphviz DOT, labeling nodes ``id (work)``."""
    lines = [f'digraph "{structure.name}" {{']
    for i in range(structure.num_nodes):
        lines.append(f'  n{i} [label="{i} ({structure.work[i]:g})"];')
    for u, v in structure.edges():
        lines.append(f"  n{u} -> n{v};")
    lines.append("}")
    return "\n".join(lines)
