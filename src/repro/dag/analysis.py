"""Structural analytics of DAG jobs.

Workload characterization beyond ``W`` and ``L``: the parallelism
profile (how many processors the DAG can use at each depth), width and
depth statistics, and degree distributions.  Used by workload docs and
the examples to sanity-check generated families against the paper's
motivating applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.graph import DAGStructure


@dataclass(frozen=True)
class DAGProfile:
    """Summary statistics of one DAG's structure."""

    num_nodes: int
    num_edges: int
    total_work: float
    span: float
    average_parallelism: float
    depth: int
    max_width: int
    mean_width: float
    max_out_degree: int
    max_in_degree: int

    def as_row(self) -> list:
        """Row for :func:`repro.analysis.tables.format_table`."""
        return [
            self.num_nodes,
            self.num_edges,
            round(self.total_work, 3),
            round(self.span, 3),
            round(self.average_parallelism, 3),
            self.depth,
            self.max_width,
            round(self.mean_width, 2),
        ]


def node_depths(structure: DAGStructure) -> np.ndarray:
    """Hop depth of each node (longest predecessor *count* path)."""
    depth = np.zeros(structure.num_nodes, dtype=np.int64)
    for u in structure.topological_order():
        for v in structure.successors(u):
            if depth[u] + 1 > depth[v]:
                depth[v] = depth[u] + 1
    return depth


def width_profile(structure: DAGStructure) -> np.ndarray:
    """Number of nodes at each hop depth (the layer widths)."""
    depths = node_depths(structure)
    return np.bincount(depths)


def work_parallelism_profile(
    structure: DAGStructure, bins: int = 16
) -> np.ndarray:
    """Available work per span-progress bin.

    Splits the weighted depth range (earliest possible start time of
    each node if the machine were infinitely wide) into ``bins`` and
    sums node work per bin -- a view of when the DAG *could* use
    processors.
    """
    # earliest start = longest weighted path to the node, excluding it
    start = np.zeros(structure.num_nodes, dtype=np.float64)
    for u in structure.topological_order():
        for v in structure.successors(u):
            candidate = start[u] + structure.work[u]
            if candidate > start[v]:
                start[v] = candidate
    horizon = structure.span
    profile = np.zeros(bins, dtype=np.float64)
    for node in range(structure.num_nodes):
        frac = start[node] / horizon if horizon > 0 else 0.0
        profile[min(bins - 1, int(frac * bins))] += structure.work[node]
    return profile


def profile(structure: DAGStructure) -> DAGProfile:
    """Compute the full :class:`DAGProfile`."""
    widths = width_profile(structure)
    indeg = np.fromiter(
        (structure.indegree(i) for i in range(structure.num_nodes)),
        dtype=np.int64,
        count=structure.num_nodes,
    )
    outdeg = np.fromiter(
        (len(structure.successors(i)) for i in range(structure.num_nodes)),
        dtype=np.int64,
        count=structure.num_nodes,
    )
    return DAGProfile(
        num_nodes=structure.num_nodes,
        num_edges=structure.num_edges,
        total_work=structure.total_work,
        span=structure.span,
        average_parallelism=structure.average_parallelism(),
        depth=int(widths.size),
        max_width=int(widths.max()),
        mean_width=float(widths.mean()),
        max_out_degree=int(outdeg.max()),
        max_in_degree=int(indeg.max()),
    )
