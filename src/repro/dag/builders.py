"""Constructors for DAG families.

Includes the two adversarial DAGs from the paper's Section 4 (Figures 1
and 2) plus the generic families used by the experiment workloads:
chains, blocks, fork-joins, random layered graphs, series-parallel
graphs, Cilk-style recursive fork-join graphs, and G(n, p) random DAGs.

Every random generator takes an explicit :class:`numpy.random.Generator`
(``rng``) so workloads are reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dag.graph import DAGStructure


class DAGBuilder:
    """Incremental DAG construction helper.

    Example
    -------
    >>> b = DAGBuilder("diamond")
    >>> top = b.add_node(1.0)
    >>> left, right = b.add_node(2.0), b.add_node(3.0)
    >>> bottom = b.add_node(1.0)
    >>> b.add_edges([(top, left), (top, right), (left, bottom), (right, bottom)])
    >>> dag = b.build()
    >>> dag.span
    5.0
    """

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self._work: list[float] = []
        self._edges: list[tuple[int, int]] = []

    def add_node(self, work: float = 1.0) -> int:
        """Append a node with the given work; returns its id."""
        if work <= 0:
            raise ValueError("node work must be positive")
        self._work.append(float(work))
        return len(self._work) - 1

    def add_nodes(self, works: Sequence[float]) -> list[int]:
        """Append several nodes; returns their ids."""
        return [self.add_node(w) for w in works]

    def add_edge(self, u: int, v: int) -> "DAGBuilder":
        """Add precedence edge ``u -> v``."""
        self._edges.append((u, v))
        return self

    def add_edges(self, edges: Sequence[tuple[int, int]]) -> "DAGBuilder":
        """Add several precedence edges."""
        self._edges.extend((int(u), int(v)) for u, v in edges)
        return self

    def add_chain(self, works: Sequence[float]) -> list[int]:
        """Append a sequential chain of nodes; returns their ids."""
        ids = self.add_nodes(works)
        for a, bnode in zip(ids, ids[1:]):
            self.add_edge(a, bnode)
        return ids

    @property
    def num_nodes(self) -> int:
        """Nodes added so far."""
        return len(self._work)

    def build(self) -> DAGStructure:
        """Freeze into an immutable :class:`DAGStructure`."""
        return DAGStructure(self._work, self._edges, name=self.name)


# ----------------------------------------------------------------------
# Elementary shapes
# ----------------------------------------------------------------------
def single_node(work: float = 1.0, name: str = "single") -> DAGStructure:
    """A one-node job: ``W = L = work``."""
    return DAGStructure([work], name=name)


def chain(length: int, node_work: float = 1.0, name: str = "chain") -> DAGStructure:
    """A fully sequential job: ``W = L = length * node_work``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    edges = [(i, i + 1) for i in range(length - 1)]
    return DAGStructure([node_work] * length, edges, name=name)


def block(width: int, node_work: float = 1.0, name: str = "block") -> DAGStructure:
    """A fully parallel job: ``W = width * node_work``, ``L = node_work``."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return DAGStructure([node_work] * width, (), name=name)


def fork_join(
    width: int,
    node_work: float = 1.0,
    fork_work: float = 1.0,
    join_work: float = 1.0,
    name: str = "fork_join",
) -> DAGStructure:
    """Fork node -> ``width`` parallel nodes -> join node."""
    if width < 1:
        raise ValueError("width must be >= 1")
    works = [fork_work] + [node_work] * width + [join_work]
    join_id = width + 1
    edges = [(0, i) for i in range(1, width + 1)]
    edges += [(i, join_id) for i in range(1, width + 1)]
    return DAGStructure(works, edges, name=name)


# ----------------------------------------------------------------------
# The paper's Section 4 adversarial DAGs
# ----------------------------------------------------------------------
def block_with_chain(
    total_work: float,
    num_processors: int,
    node_work: float = 1.0,
    name: str = "fig1",
) -> DAGStructure:
    """The Figure 1 DAG: a chain of length ``W/m`` in parallel with a block.

    The job has total work ``W = total_work`` and span ``L = W/m``: one
    sequential chain of ``L`` work with no dependence on a fully parallel
    block carrying the remaining ``W - L`` work.  A clairvoyant scheduler
    finishes in ``W/m`` (run the chain on one processor, the block on the
    other ``m-1``); an unlucky semi-non-clairvoyant scheduler that
    executes the whole block first needs ``(W - L)/m + L`` -- the
    Theorem 1 lower bound of speed ``2 - 1/m``.

    ``total_work`` must make both the chain length ``W/(m * node_work)``
    and the block width integral.
    """
    m = int(num_processors)
    if m < 2:
        raise ValueError("num_processors must be >= 2")
    span = total_work / m
    chain_len = span / node_work
    if abs(chain_len - round(chain_len)) > 1e-9 or round(chain_len) < 1:
        raise ValueError(
            f"total_work/(m*node_work) = {chain_len} must be a positive integer"
        )
    chain_len = int(round(chain_len))
    block_width = (total_work - span) / node_work
    if abs(block_width - round(block_width)) > 1e-9 or round(block_width) < 1:
        raise ValueError(
            f"(W - L)/node_work = {block_width} must be a positive integer"
        )
    block_width = int(round(block_width))
    works = [node_work] * (chain_len + block_width)
    edges = [(i, i + 1) for i in range(chain_len - 1)]
    return DAGStructure(works, edges, name=name)


def chain_then_block(
    total_work: float,
    span: float,
    node_work: float,
    name: str = "fig2",
) -> DAGStructure:
    """The Figure 2 DAG: a chain of ``L - eps`` then a parallel block.

    With node size ``eps = node_work``, the chain has ``(L - eps)/eps``
    nodes and the trailing block ``(W - L + eps)/eps`` nodes, every block
    node depending on the last chain node.  Even a *clairvoyant*
    scheduler needs ``(L - eps) + (W - L + eps)/m`` time, which tends to
    ``(W - L)/m + L`` as ``eps -> 0`` -- justifying the paper's deadline
    assumption ``D >= (W - L)/m + L``.
    """
    eps = node_work
    chain_len = (span - eps) / eps
    if abs(chain_len - round(chain_len)) > 1e-9 or round(chain_len) < 1:
        raise ValueError(f"(span - eps)/eps = {chain_len} must be a positive integer")
    chain_len = int(round(chain_len))
    block_width = (total_work - span + eps) / eps
    if abs(block_width - round(block_width)) > 1e-9 or round(block_width) < 1:
        raise ValueError(
            f"(W - L + eps)/eps = {block_width} must be a positive integer"
        )
    block_width = int(round(block_width))
    works = [eps] * (chain_len + block_width)
    edges = [(i, i + 1) for i in range(chain_len - 1)]
    last_chain = chain_len - 1
    edges += [(last_chain, chain_len + j) for j in range(block_width)]
    return DAGStructure(works, edges, name=name)


# ----------------------------------------------------------------------
# Random families
# ----------------------------------------------------------------------
def layered_random(
    num_layers: int,
    width: int,
    rng: np.random.Generator,
    edge_prob: float = 0.5,
    work_low: float = 0.5,
    work_high: float = 2.0,
    name: str = "layered",
) -> DAGStructure:
    """Random layered DAG: edges only between consecutive layers.

    Each node in layer ``k > 0`` receives at least one predecessor from
    layer ``k-1`` (so the span scales with ``num_layers``), plus extra
    predecessors with probability ``edge_prob``.
    """
    if num_layers < 1 or width < 1:
        raise ValueError("num_layers and width must be >= 1")
    n = num_layers * width
    works = rng.uniform(work_low, work_high, size=n)
    edges: list[tuple[int, int]] = []
    for layer in range(1, num_layers):
        prev = range((layer - 1) * width, layer * width)
        cur = range(layer * width, (layer + 1) * width)
        for v in cur:
            preds = [u for u in prev if rng.random() < edge_prob]
            if not preds:
                preds = [int(rng.integers((layer - 1) * width, layer * width))]
            edges.extend((u, v) for u in preds)
    return DAGStructure(works, edges, name=name)


def series_parallel_random(
    target_nodes: int,
    rng: np.random.Generator,
    work_low: float = 0.5,
    work_high: float = 2.0,
    series_prob: float = 0.5,
    name: str = "series_parallel",
) -> DAGStructure:
    """Random series-parallel DAG via recursive composition.

    Starts from a single edge and repeatedly applies series or parallel
    compositions until roughly ``target_nodes`` nodes exist.  These model
    structured parallel programs (nested fork-join), the family the
    paper's motivating languages (Cilk, OpenMP tasks) produce.
    """
    if target_nodes < 1:
        raise ValueError("target_nodes must be >= 1")

    # Represent the SP-DAG as a recursive composition tree of leaf count
    # target_nodes, then linearize to nodes/edges with unit source/sink
    # fan structure.
    builder = DAGBuilder(name)

    def sample_work() -> float:
        return float(rng.uniform(work_low, work_high))

    def emit(count: int) -> tuple[int, int]:
        """Emit a sub-DAG of ~count nodes; return (entry, exit) node ids."""
        if count <= 1:
            nid = builder.add_node(sample_work())
            return nid, nid
        left = int(rng.integers(1, count))
        right = count - left
        if rng.random() < series_prob:
            e1, x1 = emit(left)
            e2, x2 = emit(right)
            builder.add_edge(x1, e2)
            return e1, x2
        e1, x1 = emit(left)
        e2, x2 = emit(right)
        entry = builder.add_node(sample_work())
        exit_ = builder.add_node(sample_work())
        builder.add_edges([(entry, e1), (entry, e2), (x1, exit_), (x2, exit_)])
        return entry, exit_

    emit(target_nodes)
    return builder.build()


def recursive_fork_join(
    depth: int,
    branching: int = 2,
    node_work: float = 1.0,
    leaf_work: float | None = None,
    name: str = "recursive_fork_join",
) -> DAGStructure:
    """Cilk-style recursive fork-join (divide-and-conquer) DAG.

    Each internal level forks ``branching`` children and joins them; the
    leaves at ``depth`` carry ``leaf_work`` (defaults to ``node_work``).
    Models recursive parallel programs such as parallel sort.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if branching < 1:
        raise ValueError("branching must be >= 1")
    if leaf_work is None:
        leaf_work = node_work
    builder = DAGBuilder(name)

    def emit(level: int) -> tuple[int, int]:
        if level == depth:
            nid = builder.add_node(leaf_work)
            return nid, nid
        fork = builder.add_node(node_work)
        join = builder.add_node(node_work)
        for _ in range(branching):
            entry, exit_ = emit(level + 1)
            builder.add_edge(fork, entry)
            builder.add_edge(exit_, join)
        return fork, join

    emit(0)
    return builder.build()


def random_dag_gnp(
    num_nodes: int,
    edge_prob: float,
    rng: np.random.Generator,
    work_low: float = 0.5,
    work_high: float = 2.0,
    name: str = "gnp",
) -> DAGStructure:
    """Erdos-Renyi-style random DAG.

    Orients each sampled edge from lower to higher node id, guaranteeing
    acyclicity; this is the standard G(n, p) DAG model.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if not 0 <= edge_prob <= 1:
        raise ValueError("edge_prob must be in [0, 1]")
    works = rng.uniform(work_low, work_high, size=num_nodes)
    edges: list[tuple[int, int]] = []
    if num_nodes > 1 and edge_prob > 0:
        # Vectorized upper-triangular Bernoulli sampling.
        iu, ju = np.triu_indices(num_nodes, k=1)
        mask = rng.random(iu.size) < edge_prob
        edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))
    return DAGStructure(works, edges, name=name)


def wavefront(
    rows: int,
    cols: int,
    node_work: float = 1.0,
    name: str = "wavefront",
) -> DAGStructure:
    """2-D wavefront (grid) DAG: node (i, j) depends on (i-1, j) and
    (i, j-1).

    The classic HPC stencil / dynamic-programming dependence pattern;
    span is ``(rows + cols - 1) * node_work`` along the anti-diagonal
    frontier.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    n = rows * cols
    works = [node_work] * n
    edges: list[tuple[int, int]] = []
    for i in range(rows):
        for j in range(cols):
            here = i * cols + j
            if i + 1 < rows:
                edges.append((here, here + cols))
            if j + 1 < cols:
                edges.append((here, here + 1))
    return DAGStructure(works, edges, name=name)


def reduction_tree(
    leaves: int,
    leaf_work: float = 1.0,
    inner_work: float = 1.0,
    name: str = "reduction",
) -> DAGStructure:
    """Binary reduction tree: ``leaves`` inputs pairwise combined.

    The parallel-reduce pattern; span ~ ``log2(leaves)`` levels.
    ``leaves`` must be a power of two.
    """
    if leaves < 1 or leaves & (leaves - 1):
        raise ValueError("leaves must be a positive power of two")
    builder = DAGBuilder(name)
    frontier = [builder.add_node(leaf_work) for _ in range(leaves)]
    while len(frontier) > 1:
        nxt = []
        for a, b in zip(frontier[::2], frontier[1::2]):
            parent = builder.add_node(inner_work)
            builder.add_edge(a, parent)
            builder.add_edge(b, parent)
            nxt.append(parent)
        frontier = nxt
    return builder.build()


def pipeline(
    stages: int,
    width: int,
    node_work: float = 1.0,
    name: str = "pipeline",
) -> DAGStructure:
    """Software pipeline: ``stages`` fork-join phases chained serially.

    Each stage is a ``width``-wide parallel phase whose join feeds the
    next stage's fork -- the bulk-synchronous-parallel superstep shape.
    """
    if stages < 1 or width < 1:
        raise ValueError("stages and width must be >= 1")
    builder = DAGBuilder(name)
    prev_join: int | None = None
    for _ in range(stages):
        fork = builder.add_node(node_work)
        if prev_join is not None:
            builder.add_edge(prev_join, fork)
        join = builder.add_node(node_work)
        for _ in range(width):
            mid = builder.add_node(node_work)
            builder.add_edge(fork, mid)
            builder.add_edge(mid, join)
        prev_join = join
    return builder.build()


def from_networkx(graph, work_attr: str = "work", name: str | None = None) -> DAGStructure:
    """Import a :class:`networkx.DiGraph` as a :class:`DAGStructure`.

    Node ids may be arbitrary hashables; they are relabeled to dense
    integers in sorted-by-insertion order.  Per-node work is read from
    ``work_attr`` (default 1.0 when absent).
    """
    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    works = [float(graph.nodes[node].get(work_attr, 1.0)) for node in nodes]
    edges = [(index[u], index[v]) for u, v in graph.edges()]
    return DAGStructure(works, edges, name=name or graph.name or "networkx")
