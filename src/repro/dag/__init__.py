"""DAG job substrate.

This package models parallelizable jobs as directed acyclic graphs of
work-carrying nodes, exactly as in the paper: a node is ready once all of
its predecessors have completed, any set of ready nodes may execute
simultaneously, and the job completes when every node has been processed.

The two quantities the paper's semi-non-clairvoyant scheduler is allowed
to see -- total work ``W`` and span (critical-path length) ``L`` -- are
computed here, along with the runtime ready-set machinery the simulation
engine drives.
"""

from repro.dag.node import NodeState
from repro.dag.graph import DAGStructure
from repro.dag.job import DAGJob
from repro.dag.builders import (
    DAGBuilder,
    chain,
    block,
    single_node,
    fork_join,
    block_with_chain,
    chain_then_block,
    layered_random,
    series_parallel_random,
    recursive_fork_join,
    random_dag_gnp,
    wavefront,
    reduction_tree,
    pipeline,
    from_networkx,
)
from repro.dag.serialize import (
    structure_to_dict,
    structure_from_dict,
    structure_to_json,
    structure_from_json,
    structure_to_dot,
)
from repro.dag.validate import validate_structure, ValidationError

__all__ = [
    "NodeState",
    "DAGStructure",
    "DAGJob",
    "DAGBuilder",
    "chain",
    "block",
    "single_node",
    "fork_join",
    "block_with_chain",
    "chain_then_block",
    "layered_random",
    "series_parallel_random",
    "recursive_fork_join",
    "random_dag_gnp",
    "wavefront",
    "reduction_tree",
    "pipeline",
    "from_networkx",
    "structure_to_dict",
    "structure_from_dict",
    "structure_to_json",
    "structure_from_json",
    "structure_to_dot",
    "validate_structure",
    "ValidationError",
]
