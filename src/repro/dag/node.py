"""Node-level definitions for DAG jobs.

A node is the unit of sequential execution: a block of instructions with a
fixed amount of *work* (processing time at speed 1).  Nodes move through a
small state machine as the simulation executes the job:

``PENDING`` -> ``READY`` -> ``RUNNING`` -> ``DONE``

A node becomes ``READY`` when its last unfinished predecessor completes;
the engine may move it between ``READY`` and ``RUNNING`` arbitrarily often
(execution is preemptive), and it becomes ``DONE`` when its remaining work
reaches zero.
"""

from __future__ import annotations

import enum


class NodeState(enum.IntEnum):
    """Lifecycle state of a single DAG node."""

    #: Some predecessor has not completed yet; the node may not execute.
    PENDING = 0
    #: All predecessors completed; the node may be assigned a processor.
    READY = 1
    #: Currently assigned to a processor.
    RUNNING = 2
    #: All work processed.
    DONE = 3

    def is_terminal(self) -> bool:
        """Whether the node will never change state again."""
        return self is NodeState.DONE

    def is_executable(self) -> bool:
        """Whether the node may legally receive processor time right now."""
        return self in (NodeState.READY, NodeState.RUNNING)


#: Transitions allowed by the node state machine.  Used by the validator
#: and by :class:`repro.dag.job.DAGJob` debug assertions.
ALLOWED_TRANSITIONS: frozenset[tuple[NodeState, NodeState]] = frozenset(
    {
        (NodeState.PENDING, NodeState.READY),
        (NodeState.READY, NodeState.RUNNING),
        (NodeState.RUNNING, NodeState.READY),  # preemption
        (NodeState.RUNNING, NodeState.DONE),
    }
)


def is_allowed_transition(old: NodeState, new: NodeState) -> bool:
    """Whether ``old -> new`` is a legal node state transition."""
    return (old, new) in ALLOWED_TRANSITIONS
