"""Static DAG structure: topology plus per-node work.

:class:`DAGStructure` is the immutable description of a job's DAG.  It is
shared between runs -- the mutable execution state lives in
:class:`repro.dag.job.DAGJob`, so the same structure can be replayed under
many schedulers without copying the topology.

Two aggregate quantities drive the whole paper:

* ``work`` (:attr:`DAGStructure.total_work`): the sum of node works,
  written :math:`W_i` -- the job's execution time on one processor.
* ``span`` (:attr:`DAGStructure.span`): the longest path weight, written
  :math:`L_i` -- the job's execution time on infinitely many processors.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import numpy as np


class DAGStructure:
    """Immutable topology and node works of a parallel job.

    Parameters
    ----------
    work:
        Per-node processing time; all entries must be positive and finite.
    edges:
        ``(u, v)`` pairs meaning node ``u`` must complete before node ``v``
        may start.  The graph must be acyclic.
    name:
        Optional human-readable label used in traces and exports.

    Notes
    -----
    Node ids are the integers ``0 .. n-1``, fixed by the order of ``work``.
    Duplicate edges are rejected -- they would corrupt the indegree
    counting that :class:`repro.dag.job.DAGJob` uses for readiness.
    """

    __slots__ = (
        "_work",
        "_succ",
        "_pred",
        "_name",
        "_total_work",
        "_span",
        "_topo",
        "_tail",
        "_edge_count",
        "_work_list",
        "_indegree_list",
        "_initial_ready",
        "_n",
    )

    def __init__(
        self,
        work: Sequence[float] | np.ndarray,
        edges: Iterable[tuple[int, int]] = (),
        name: str = "dag",
    ) -> None:
        work_arr = np.asarray(work, dtype=np.float64)
        if work_arr.ndim != 1 or work_arr.size == 0:
            raise ValueError("work must be a non-empty 1-D sequence")
        if not np.all(np.isfinite(work_arr)) or np.any(work_arr <= 0):
            raise ValueError("all node works must be positive and finite")
        n = int(work_arr.size)
        succ: list[list[int]] = [[] for _ in range(n)]
        pred: list[list[int]] = [[] for _ in range(n)]
        seen: set[tuple[int, int]] = set()
        edge_count = 0
        for u, v in edges:
            u = int(u)
            v = int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) references unknown node")
            if u == v:
                raise ValueError(f"self-loop on node {u}")
            if (u, v) in seen:
                raise ValueError(f"duplicate edge ({u}, {v})")
            seen.add((u, v))
            succ[u].append(v)
            pred[v].append(u)
            edge_count += 1

        self._work = work_arr
        self._work.setflags(write=False)
        self._n = n
        self._succ = tuple(tuple(s) for s in succ)
        self._pred = tuple(tuple(p) for p in pred)
        self._name = str(name)
        self._edge_count = edge_count
        self._indegree_list: tuple[int, ...] = ()
        self._initial_ready: tuple[int, ...] = ()
        self._topo = self._toposort()  # raises on cycles; fills the two above
        self._total_work = float(work_arr.sum())
        self._span = self._compute_span()
        self._tail: np.ndarray | None = None
        self._work_list: tuple[float, ...] | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable label."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the DAG."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of precedence edges."""
        return self._edge_count

    @property
    def work(self) -> np.ndarray:
        """Read-only per-node work array."""
        return self._work

    @property
    def work_list(self) -> tuple[float, ...]:
        """Per-node work as plain Python floats (cached).

        The simulation runtime (:class:`repro.dag.job.DAGJob`) keeps its
        mutable per-node state in Python lists -- scalar indexing of
        numpy arrays dominates the engine's event loop otherwise -- and
        seeds it from this tuple.  Values are bit-identical to
        :attr:`work`.
        """
        if self._work_list is None:
            self._work_list = tuple(self._work.tolist())
        return self._work_list

    @property
    def total_work(self) -> float:
        """Total work :math:`W` (sum of node works)."""
        return self._total_work

    @property
    def span(self) -> float:
        """Critical-path length :math:`L` (maximum path weight)."""
        return self._span

    def successors(self, node: int) -> tuple[int, ...]:
        """Nodes that depend on ``node``."""
        return self._succ[node]

    def predecessors(self, node: int) -> tuple[int, ...]:
        """Nodes that ``node`` depends on."""
        return self._pred[node]

    def indegree(self, node: int) -> int:
        """Number of predecessors of ``node``."""
        return len(self._pred[node])

    @property
    def indegree_list(self) -> tuple[int, ...]:
        """Per-node indegrees (precomputed; seeds the runtime's
        remaining-predecessor counters)."""
        return self._indegree_list

    @property
    def initial_ready(self) -> tuple[int, ...]:
        """Zero-indegree nodes in topological order (precomputed) -- the
        ready set of a freshly started job, in its canonical insertion
        order."""
        return self._initial_ready

    def sources(self) -> tuple[int, ...]:
        """Nodes with no predecessors (ready at job start)."""
        return tuple(i for i in range(self.num_nodes) if not self._pred[i])

    def sinks(self) -> tuple[int, ...]:
        """Nodes with no successors."""
        return tuple(i for i in range(self.num_nodes) if not self._succ[i])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all ``(u, v)`` precedence edges."""
        for u, succs in enumerate(self._succ):
            for v in succs:
                yield (u, v)

    def topological_order(self) -> tuple[int, ...]:
        """A topological ordering of node ids (Kahn's algorithm)."""
        return self._topo

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def _toposort(self) -> tuple[int, ...]:
        n = self.num_nodes
        indeg = [len(p) for p in self._pred]
        queue: deque[int] = deque(i for i in range(n) if indeg[i] == 0)
        # Kahn's algorithm computes both cached quantities as a side
        # effect: the indegree list before mutation, and the initial
        # ready set (the seed nodes, which are also the first entries of
        # the resulting order -- identical to filtering the topological
        # order by zero indegree).
        self._indegree_list = tuple(indeg)
        self._initial_ready = tuple(queue)
        order: list[int] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in self._succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != n:
            raise ValueError("graph contains a cycle")
        return tuple(order)

    def _compute_span(self) -> float:
        # Longest weighted path, DP over topological order.
        dist = np.zeros(self.num_nodes, dtype=np.float64)
        for u in self._topo:
            dist[u] += self._work[u]
            for v in self._succ[u]:
                if dist[u] > dist[v]:
                    dist[v] = dist[u]
        return float(dist.max()) if self.num_nodes else 0.0

    def tail_lengths(self) -> np.ndarray:
        """Longest path weight from each node to any sink, inclusive.

        The node(s) with the maximum tail lie on the critical path.  The
        adversarial ready-node picker (Figure 1 / Theorem 1) uses this to
        defer critical-path nodes for as long as possible.
        """
        if self._tail is None:
            tail = np.zeros(self.num_nodes, dtype=np.float64)
            for u in reversed(self._topo):
                best = 0.0
                for v in self._succ[u]:
                    if tail[v] > best:
                        best = tail[v]
                tail[u] = best + self._work[u]
            tail.setflags(write=False)
            self._tail = tail
        return self._tail

    def average_parallelism(self) -> float:
        """``W / L`` -- the classic parallelism measure of the DAG."""
        return self._total_work / self._span

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with ``work`` node attrs."""
        import networkx as nx

        g = nx.DiGraph(name=self._name)
        for i in range(self.num_nodes):
            g.add_node(i, work=float(self._work[i]))
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DAGStructure(name={self._name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, W={self._total_work:.6g}, "
            f"L={self._span:.6g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAGStructure):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self._work, other._work)
            and self._succ == other._succ
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self._edge_count, self._total_work, self._span))
