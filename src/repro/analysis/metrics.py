"""Summary metrics of finished simulation runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class ResultSummary:
    """Headline numbers of one run."""

    total_profit: float
    jobs: int
    completed: int
    on_time: int
    expired: int
    abandoned: int
    mean_response: float
    utilization: float
    preemptions: int
    decisions: int

    @property
    def on_time_fraction(self) -> float:
        """Fraction of jobs completed by their effective deadline."""
        return self.on_time / self.jobs if self.jobs else 0.0


def summarize(result: SimulationResult) -> ResultSummary:
    """Aggregate a :class:`SimulationResult` into a summary."""
    records = list(result.records.values())
    completed = [r for r in records if r.completed]
    responses = [r.completion_time - r.arrival for r in completed]
    start = min((r.arrival for r in records), default=0)
    horizon = max(result.end_time - start, 1)
    return ResultSummary(
        total_profit=result.total_profit,
        jobs=len(records),
        completed=len(completed),
        on_time=sum(1 for r in records if r.on_time),
        expired=sum(1 for r in records if r.expired),
        abandoned=sum(1 for r in records if r.abandoned),
        mean_response=float(np.mean(responses)) if responses else float("nan"),
        utilization=result.counters.busy_steps / (result.m * horizon),
        preemptions=result.counters.preemptions,
        decisions=result.counters.decisions,
    )


def profit_fraction(result: SimulationResult, opt_bound: float) -> float:
    """Algorithm profit as a fraction of an OPT upper bound (<= 1 when
    the bound is valid)."""
    if opt_bound <= 0:
        return 1.0 if result.total_profit <= 0 else float("inf")
    return result.total_profit / opt_bound


def empirical_competitive_ratio(
    result: SimulationResult, opt_bound: float
) -> Optional[float]:
    """``opt_bound / profit`` -- an upper bound on how badly the run did
    (because the OPT bound itself is an upper bound).  ``None`` when the
    algorithm earned nothing and the bound is positive (ratio infinite)."""
    if result.total_profit > 0:
        return opt_bound / result.total_profit
    return None if opt_bound > 0 else 1.0
