"""Post-hoc verification of finished runs against model invariants.

These checks are the oracles the integration tests and the invariant
experiment (E8) use: they consume a :class:`SimulationResult` (plus the
workload and, for scheduler-specific checks, the scheduler) and return
human-readable violation lists (empty = all good).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.sns import SNSScheduler
from repro.sim.engine import SimulationResult
from repro.sim.jobs import JobSpec


def verify_profits(result: SimulationResult, specs: Sequence[JobSpec]) -> list[str]:
    """Each job's earned profit matches its completion time and spec."""
    problems: list[str] = []
    by_id = {sp.job_id: sp for sp in specs}
    for rec in result.records.values():
        spec = by_id.get(rec.job_id)
        if spec is None:
            problems.append(f"record for unknown job {rec.job_id}")
            continue
        if rec.completion_time is None:
            if rec.profit != 0.0:
                problems.append(f"job {rec.job_id}: profit without completion")
            continue
        expected = spec.profit_at(rec.completion_time - spec.arrival)
        if abs(rec.profit - expected) > 1e-9:
            problems.append(
                f"job {rec.job_id}: profit {rec.profit} != expected {expected}"
            )
        if spec.deadline is not None and rec.completion_time > spec.deadline:
            problems.append(
                f"job {rec.job_id}: completed at {rec.completion_time} past "
                f"deadline {spec.deadline} (engine should have expired it)"
            )
    return problems


def verify_work_accounting(
    result: SimulationResult, specs: Sequence[JobSpec]
) -> list[str]:
    """Processor-step accounting is conservative and sufficient.

    * A completed job must have received at least ``W/speed``
      processor-steps (whole-step occupancy can only add);
    * no job received more dedicated steps than ``m`` times its
      residence time;
    * machine-wide busy steps never exceed ``m * elapsed``.
    """
    problems: list[str] = []
    by_id = {sp.job_id: sp for sp in specs}
    start = min((sp.arrival for sp in specs), default=0)
    elapsed = max(result.end_time - start, 0)
    for rec in result.records.values():
        spec = by_id[rec.job_id]
        if rec.completion_time is not None:
            needed = spec.work / result.speed
            if rec.processor_steps + 1e-6 < needed - spec.structure.num_nodes:
                problems.append(
                    f"job {rec.job_id}: completed with only "
                    f"{rec.processor_steps} processor-steps "
                    f"(needs >= {needed:.6g} minus per-node rounding)"
                )
            residence = rec.completion_time - spec.arrival
            if rec.processor_steps > result.m * residence + 1e-6:
                problems.append(
                    f"job {rec.job_id}: {rec.processor_steps} processor-steps "
                    f"in residence {residence} on {result.m} processors"
                )
    if result.counters.busy_steps > result.m * elapsed + 1e-6:
        problems.append(
            f"busy steps {result.counters.busy_steps} exceed machine capacity "
            f"{result.m * elapsed}"
        )
    if result.counters.busy_steps > result.counters.allocated_steps + 1e-6:
        problems.append("busy steps exceed allocated steps")
    return problems


def verify_sns_observation2(
    result: SimulationResult, scheduler: SNSScheduler
) -> list[str]:
    """Observation 2: a job S completed received at most
    ``ceil(x_i) * n_i`` dedicated processor-steps.

    (S always hands a job exactly ``n_i`` processors, and Observation 2
    bounds the number of such steps before completion by ``x_i``.)
    """
    problems: list[str] = []
    for rec in result.records.values():
        state = scheduler.all_states.get(rec.job_id)
        if state is None or rec.completion_time is None:
            continue
        import math

        cap = math.ceil(state.x) * state.allotment
        if rec.processor_steps > cap + 1e-6:
            problems.append(
                f"job {rec.job_id}: {rec.processor_steps} processor-steps > "
                f"ceil(x)*n = {cap}"
            )
    return problems


def verify_trace_consistency(result: SimulationResult) -> list[str]:
    """Trace slices respect machine capacity and never overlap in time."""
    problems: list[str] = []
    trace = result.trace
    if trace is None:
        return ["no trace recorded"]
    prev_end = None
    for sl in trace.slices:
        if sl.t1 <= sl.t0:
            problems.append(f"empty/negative slice [{sl.t0},{sl.t1})")
        if prev_end is not None and sl.t0 < prev_end:
            problems.append(f"overlapping slice at t={sl.t0}")
        prev_end = sl.t1
        if sl.allocated > result.m:
            problems.append(
                f"slice [{sl.t0},{sl.t1}): allocated {sl.allocated} > m"
            )
        if sl.busy > sl.allocated:
            problems.append(f"slice [{sl.t0},{sl.t1}): busy > allocated")
    return problems
