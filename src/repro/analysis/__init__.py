"""Metrics, OPT bounds, verification and comparison drivers."""

from repro.analysis.metrics import (
    ResultSummary,
    empirical_competitive_ratio,
    profit_fraction,
    summarize,
)
from repro.analysis.opt import (
    best_effort_lower_bound,
    feasible_profit_bound,
    interval_lp_upper_bound,
    interval_milp_upper_bound,
    opt_bound,
)
from repro.analysis.offline import OfflineSearchResult, randomized_offline_search
from repro.analysis.ratios import ComparisonRow, compare_schedulers
from repro.analysis.report import scheduler_report, workload_summary
from repro.analysis.smallopt import SmallOptResult, small_instance_opt
from repro.analysis.gantt import render_gantt, render_utilization
from repro.analysis.augmentation import (
    SpeedPoint,
    min_speed_for_fraction,
    profit_at_speed,
    speed_profile,
)
from repro.analysis.stats import Aggregate, geometric_mean, replicate
from repro.analysis.tables import format_markdown, format_table
from repro.analysis.verify import (
    verify_profits,
    verify_sns_observation2,
    verify_trace_consistency,
    verify_work_accounting,
)

__all__ = [
    "ResultSummary",
    "empirical_competitive_ratio",
    "profit_fraction",
    "summarize",
    "best_effort_lower_bound",
    "feasible_profit_bound",
    "interval_lp_upper_bound",
    "interval_milp_upper_bound",
    "opt_bound",
    "OfflineSearchResult",
    "randomized_offline_search",
    "ComparisonRow",
    "compare_schedulers",
    "scheduler_report",
    "workload_summary",
    "SmallOptResult",
    "small_instance_opt",
    "render_gantt",
    "render_utilization",
    "SpeedPoint",
    "min_speed_for_fraction",
    "profit_at_speed",
    "speed_profile",
    "Aggregate",
    "geometric_mean",
    "replicate",
    "format_markdown",
    "format_table",
    "verify_profits",
    "verify_sns_observation2",
    "verify_trace_consistency",
    "verify_work_accounting",
]
