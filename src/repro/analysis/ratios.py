"""Scheduler comparison drivers: run many schedulers on one workload and
report profits and OPT-bound fractions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.analysis.opt import opt_bound
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.jobs import JobSpec
from repro.sim.picker import NodePicker
from repro.sim.scheduler import Scheduler

SchedulerFactory = Callable[[], Scheduler]


@dataclass
class ComparisonRow:
    """One scheduler's outcome on one workload."""

    name: str
    profit: float
    on_time: int
    jobs: int
    fraction_of_bound: float
    result: SimulationResult


def compare_schedulers(
    specs: Sequence[JobSpec],
    m: int,
    schedulers: Mapping[str, SchedulerFactory],
    speed: float = 1.0,
    picker: Optional[NodePicker] = None,
    picker_factory: Optional[Callable[[], NodePicker]] = None,
    bound: Optional[float] = None,
    bound_method: str = "feasible",
) -> list[ComparisonRow]:
    """Run every scheduler on (a fresh copy of) the workload.

    ``bound`` is the OPT upper bound to normalize against; computed via
    ``bound_method`` when not supplied.  ``picker_factory`` builds a
    fresh picker per run (needed for seeded random pickers);
    ``picker`` shares one (fine for stateless pickers).
    """
    if bound is None:
        bound = opt_bound(specs, m, method=bound_method)
    rows: list[ComparisonRow] = []
    for name, factory in schedulers.items():
        run_picker = picker_factory() if picker_factory is not None else picker
        sim = Simulator(m=m, scheduler=factory(), picker=run_picker, speed=speed)
        result = sim.run(list(specs))
        rows.append(
            ComparisonRow(
                name=name,
                profit=result.total_profit,
                on_time=result.completed_on_time,
                jobs=result.num_jobs,
                fraction_of_bound=(
                    result.total_profit / bound if bound > 0 else 1.0
                ),
                result=result,
            )
        )
    return rows
