"""Plain-text and Markdown table rendering for experiment output."""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Fixed-width table (what the experiment runners print)."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """GitHub-flavored Markdown table (for EXPERIMENTS.md)."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(v) for v in row) + " |")
    return "\n".join(lines)
