"""One-call run reports: workload stats, scheduler comparison, Gantt.

``scheduler_report`` is the library's "show me everything" entry point
for interactive use: it characterizes the workload, runs a scheduler
portfolio against an OPT bound, and optionally renders the winning
schedule.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.gantt import render_gantt, render_utilization
from repro.analysis.metrics import summarize
from repro.analysis.opt import opt_bound
from repro.analysis.ratios import compare_schedulers
from repro.analysis.tables import format_table
from repro.sim.engine import Simulator
from repro.sim.jobs import JobSpec
from repro.sim.scheduler import Scheduler


def workload_summary(specs: Sequence[JobSpec], m: int) -> str:
    """Characterize a workload: sizes, parallelism, load, slack."""
    if not specs:
        return "(empty workload)"
    works = np.array([sp.work for sp in specs])
    spans = np.array([sp.span for sp in specs])
    arrivals = np.array([sp.arrival for sp in specs])
    horizon = max(int(arrivals.max()) + 1, 1)
    rows = [
        ["jobs", len(specs)],
        ["arrival window", f"[{arrivals.min()}, {arrivals.max()}]"],
        ["work (mean/max)", f"{works.mean():.4g} / {works.max():.4g}"],
        ["span (mean/max)", f"{spans.mean():.4g} / {spans.max():.4g}"],
        ["parallelism (mean)", f"{(works / spans).mean():.4g}"],
        ["offered load", f"{works.sum() / (m * horizon):.4g} x capacity"],
    ]
    deadline_specs = [sp for sp in specs if sp.deadline is not None]
    if deadline_specs:
        slack = np.array(
            [
                (sp.deadline - sp.arrival) / sp.sequential_bound(m)
                for sp in deadline_specs
            ]
        )
        rows.append(["slack (min/mean)", f"{slack.min():.4g} / {slack.mean():.4g}"])
    return format_table(["property", "value"], rows, title="Workload")


def scheduler_report(
    specs: Sequence[JobSpec],
    m: int,
    schedulers: Mapping[str, Callable[[], Scheduler]],
    speed: float = 1.0,
    bound_method: str = "lp",
    gantt_for: Optional[str] = None,
    gantt_width: int = 72,
) -> str:
    """Full text report: workload stats + comparison + optional Gantt.

    ``gantt_for`` names the scheduler whose schedule to draw (requires a
    second, traced run).
    """
    parts = [workload_summary(specs, m)]
    bound = opt_bound(specs, m, method=bound_method)
    rows = compare_schedulers(
        specs, m, schedulers, speed=speed, bound=bound
    )
    table_rows = []
    for row in rows:
        summary = summarize(row.result)
        table_rows.append(
            [
                row.name,
                round(row.profit, 3),
                round(row.fraction_of_bound, 4),
                f"{summary.on_time}/{summary.jobs}",
                round(summary.utilization, 3),
                summary.preemptions,
            ]
        )
    parts.append("")
    parts.append(
        format_table(
            ["scheduler", "profit", "vs bound", "on-time", "util", "preempts"],
            table_rows,
            title=f"Comparison (OPT bound = {bound:.4g}, method = {bound_method})",
        )
    )
    if gantt_for is not None:
        if gantt_for not in schedulers:
            raise KeyError(f"unknown scheduler {gantt_for!r} for gantt_for")
        traced = Simulator(
            m=m, scheduler=schedulers[gantt_for](), speed=speed,
            record_trace=True,
        ).run(list(specs))
        parts.append("")
        parts.append(f"Schedule of {gantt_for}:")
        parts.append(render_gantt(traced, width=gantt_width))
        parts.append(render_utilization(traced, width=gantt_width))
    return "\n".join(parts)
