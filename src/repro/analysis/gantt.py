"""ASCII Gantt rendering of execution traces.

Dependency-free visualization for examples, debugging and docs: one row
per job, one column per time bin; cell glyphs encode how many
processors the job held during the bin.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import SimulationResult
from repro.sim.trace import Trace

#: glyph ramp for processors-held intensity
_RAMP = " .:-=+*#%@"


def render_gantt(
    result: SimulationResult,
    width: int = 72,
    max_jobs: Optional[int] = 24,
    show_deadlines: bool = True,
) -> str:
    """Render the run's trace as an ASCII Gantt chart.

    Requires the run to have been made with ``record_trace=True``.
    Each row is a job; glyph intensity is the fraction of the machine
    the job held during that time bin, ``|`` marks the deadline bin and
    ``x`` an expiry.
    """
    trace = result.trace
    if trace is None:
        raise ValueError("render_gantt needs record_trace=True")
    if not trace.slices:
        return "(empty trace)"
    t0 = trace.slices[0].t0
    t1 = trace.slices[-1].t1
    horizon = max(1, t1 - t0)
    bins = min(width, horizon)
    bin_width = horizon / bins

    # accumulate processor-time per (job, bin)
    job_ids = sorted(result.records)
    if max_jobs is not None and len(job_ids) > max_jobs:
        job_ids = job_ids[:max_jobs]
    usage = {jid: [0.0] * bins for jid in job_ids}
    for sl in trace.slices:
        for jid, alloc, _ in sl.entries:
            if jid not in usage:
                continue
            # distribute the slice's allocation over the bins it spans
            start, end = sl.t0 - t0, sl.t1 - t0
            b_lo = int(start / bin_width)
            b_hi = min(bins - 1, int((end - 1e-9) / bin_width))
            for b in range(b_lo, b_hi + 1):
                lo = max(start, b * bin_width)
                hi = min(end, (b + 1) * bin_width)
                if hi > lo:
                    usage[jid][b] += alloc * (hi - lo)

    lines = [
        f"t = [{t0}, {t1})  ({bins} bins of {bin_width:.3g} steps, "
        f"m = {result.m})"
    ]
    label_width = max(len(f"J{jid}") for jid in job_ids)
    for jid in job_ids:
        record = result.records[jid]
        row = []
        for b, amount in enumerate(usage[jid]):
            density = amount / (bin_width * result.m)
            glyph = _RAMP[min(len(_RAMP) - 1, int(density * (len(_RAMP) - 1) + 0.999))] \
                if density > 0 else " "
            row.append(glyph)
        line = "".join(row)
        if show_deadlines:
            deadline = record.deadline or record.assigned_deadline
            if deadline is not None and t0 <= deadline <= t1:
                pos = min(bins - 1, int((deadline - t0) / bin_width))
                marker = "x" if record.expired else "|"
                line = line[:pos] + marker + line[pos + 1:]
        status = (
            "done" if record.completed else
            "EXPIRED" if record.expired else
            "abandoned" if record.abandoned else "?"
        )
        lines.append(f"J{jid:<{label_width - 1}} [{line}] {status}")
    return "\n".join(lines)


def render_utilization(result: SimulationResult, width: int = 72) -> str:
    """One-line machine-utilization sparkline over the trace."""
    trace = result.trace
    if trace is None:
        raise ValueError("render_utilization needs record_trace=True")
    if not trace.slices:
        return "(empty trace)"
    t0, t1 = trace.slices[0].t0, trace.slices[-1].t1
    horizon = max(1, t1 - t0)
    bins = min(width, horizon)
    bin_width = horizon / bins
    busy = [0.0] * bins
    for sl in trace.slices:
        start, end = sl.t0 - t0, sl.t1 - t0
        b_lo = int(start / bin_width)
        b_hi = min(bins - 1, int((end - 1e-9) / bin_width))
        for b in range(b_lo, b_hi + 1):
            lo = max(start, b * bin_width)
            hi = min(end, (b + 1) * bin_width)
            if hi > lo:
                busy[b] += sl.busy * (hi - lo)
    glyphs = []
    for amount in busy:
        frac = amount / (bin_width * result.m)
        glyphs.append(_RAMP[min(len(_RAMP) - 1, int(frac * (len(_RAMP) - 1) + 0.5))])
    return "util [" + "".join(glyphs) + "]"
