"""Exact-ish OPT for small instances via subset enumeration.

For small job counts the clairvoyant optimum can be bracketed tightly:

* **upper bound**: the most profitable subset passing the *necessary*
  schedulability conditions (per-job window ``>= max(L, W/m)`` and, for
  every time window, demand ``<=`` capacity -- the classic demand-bound
  argument);
* **lower bound**: the most profitable subset that a portfolio of
  constructive schedulers (EDF / density / FIFO with clairvoyant
  critical-path picking) actually completes in simulation.

When the two meet, OPT is known exactly.  Complexity is
``O(2^n poly)`` -- guarded by ``max_jobs``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

from repro.sim.jobs import JobSpec


@dataclass(frozen=True)
class SmallOptResult:
    """Bracket on OPT for a small instance."""

    lower: float
    upper: float
    #: job ids of the best certified-schedulable subset
    lower_subset: tuple[int, ...]
    #: job ids of the best necessary-condition subset
    upper_subset: tuple[int, ...]

    @property
    def exact(self) -> bool:
        """Whether the bracket is tight (OPT known exactly)."""
        return abs(self.upper - self.lower) <= 1e-9


def _necessary_feasible(subset: Sequence[JobSpec], m: int) -> bool:
    """Necessary conditions for completing every job in the subset."""
    for spec in subset:
        window = spec.deadline - spec.arrival
        if window + 1e-9 < max(spec.span, spec.work / m):
            return False
    # demand bound: for every (release, deadline) window pair, jobs fully
    # inside must fit in capacity
    releases = sorted({sp.arrival for sp in subset})
    deadlines = sorted({sp.deadline for sp in subset})
    for r in releases:
        for d in deadlines:
            if d <= r:
                continue
            demand = sum(
                sp.work for sp in subset if sp.arrival >= r and sp.deadline <= d
            )
            if demand > m * (d - r) + 1e-9:
                return False
    return True


def _constructive_feasible(subset: Sequence[JobSpec], m: int) -> bool:
    """Whether some portfolio scheduler completes *all* jobs on time."""
    from repro.baselines import FIFOScheduler, GlobalEDF, GreedyDensity
    from repro.sim.engine import Simulator
    from repro.sim.picker import CriticalPathPicker

    for factory in (GlobalEDF, GreedyDensity, FIFOScheduler):
        sim = Simulator(m=m, scheduler=factory(), picker=CriticalPathPicker())
        result = sim.run(list(subset))
        if all(rec.on_time for rec in result.records.values()):
            return True
    return False


def small_instance_opt(
    specs: Sequence[JobSpec], m: int, max_jobs: int = 14
) -> SmallOptResult:
    """Bracket OPT by subset enumeration (deadline jobs only).

    Subsets are enumerated in decreasing profit with branch-and-bound
    pruning: once a subset's profit cannot beat the incumbent, its
    supersets are skipped implicitly by the profit-sorted scan.
    """
    specs = list(specs)
    if len(specs) > max_jobs:
        raise ValueError(
            f"small_instance_opt is exponential; {len(specs)} jobs > "
            f"max_jobs={max_jobs}"
        )
    if any(sp.deadline is None for sp in specs):
        raise ValueError("small_instance_opt requires deadline jobs")

    best_lower = 0.0
    best_lower_subset: tuple[int, ...] = ()
    best_upper = 0.0
    best_upper_subset: tuple[int, ...] = ()

    n = len(specs)
    # order subsets by size descending profit via full enumeration; n is
    # small so 2^n iteration dominates anyway.
    for mask in range(1 << n):
        subset = [specs[i] for i in range(n) if mask >> i & 1]
        profit = sum(sp.profit for sp in subset)
        if profit <= best_upper and profit <= best_lower:
            continue
        if not subset:
            continue
        if profit > best_upper and _necessary_feasible(subset, m):
            best_upper = profit
            best_upper_subset = tuple(sp.job_id for sp in subset)
        if profit > best_lower and _necessary_feasible(subset, m) and \
                _constructive_feasible(subset, m):
            best_lower = profit
            best_lower_subset = tuple(sp.job_id for sp in subset)

    return SmallOptResult(
        lower=best_lower,
        upper=best_upper,
        lower_subset=best_lower_subset,
        upper_subset=best_upper_subset,
    )
