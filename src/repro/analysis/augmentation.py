"""Resource-augmentation analysis: speedup profiles and thresholds.

The paper's positive results are phrased as *s-speed c-competitive*;
these helpers measure that trade-off empirically for any scheduler:

* :func:`speed_profile` -- profit (as a fraction of a fixed speed-1 OPT
  bound) across a grid of speeds;
* :func:`min_speed_for_fraction` -- the smallest speed achieving a
  target fraction, by bisection (the E1 "recovery speed" generalized to
  arbitrary workloads and schedulers).

Profit is monotone in speed for the schedulers shipped here in the
aggregate sense the bisection needs; when an instance is not monotone
(possible in principle -- admission decisions shift), the bisection
still returns a speed that achieves the target, just not necessarily
the infimum.  Remember the engine's whole-step node occupancy: use
coarse node works so fractional speeds matter (see E1's note).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.analysis.opt import opt_bound
from repro.sim.engine import Simulator
from repro.sim.jobs import JobSpec
from repro.sim.scheduler import Scheduler


@dataclass(frozen=True)
class SpeedPoint:
    """One (speed, profit, fraction-of-bound) measurement."""

    speed: float
    profit: float
    fraction: float


def profit_at_speed(
    specs: Sequence[JobSpec],
    m: int,
    scheduler_factory: Callable[[], Scheduler],
    speed: float,
) -> float:
    """Total profit of one run at the given speed."""
    sim = Simulator(m=m, scheduler=scheduler_factory(), speed=speed)
    return sim.run(list(specs)).total_profit


def speed_profile(
    specs: Sequence[JobSpec],
    m: int,
    scheduler_factory: Callable[[], Scheduler],
    speeds: Sequence[float],
    bound: Optional[float] = None,
    bound_method: str = "lp",
) -> list[SpeedPoint]:
    """Measure the scheduler across a speed grid against the *speed-1*
    OPT bound (the resource-augmentation convention)."""
    if bound is None:
        bound = opt_bound(specs, m, method=bound_method)
    points = []
    for speed in speeds:
        profit = profit_at_speed(specs, m, scheduler_factory, speed)
        fraction = profit / bound if bound > 0 else 1.0
        points.append(SpeedPoint(speed=speed, profit=profit, fraction=fraction))
    return points


def min_speed_for_fraction(
    specs: Sequence[JobSpec],
    m: int,
    scheduler_factory: Callable[[], Scheduler],
    target_fraction: float,
    bound: Optional[float] = None,
    bound_method: str = "lp",
    speed_lo: float = 1.0,
    speed_hi: float = 4.0,
    tolerance: float = 0.01,
) -> Optional[float]:
    """Bisect for the smallest speed whose profit reaches
    ``target_fraction`` of the speed-1 OPT bound.

    Returns ``None`` when even ``speed_hi`` misses the target.
    """
    if not 0 < target_fraction:
        raise ValueError("target_fraction must be positive")
    if speed_lo <= 0 or speed_hi <= speed_lo:
        raise ValueError("need 0 < speed_lo < speed_hi")
    if bound is None:
        bound = opt_bound(specs, m, method=bound_method)
    if bound <= 0:
        return speed_lo
    target = target_fraction * bound

    if profit_at_speed(specs, m, scheduler_factory, speed_hi) < target - 1e-9:
        return None
    if profit_at_speed(specs, m, scheduler_factory, speed_lo) >= target - 1e-9:
        return speed_lo
    lo, hi = speed_lo, speed_hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if profit_at_speed(specs, m, scheduler_factory, mid) >= target - 1e-9:
            hi = mid
        else:
            lo = mid
    return round(hi, 6)
