"""Parameter-sweep driver with optional process parallelism.

Experiments are embarrassingly parallel across (parameter point, seed)
cells; this driver runs a grid of workload/scheduler configurations,
optionally across worker processes (the simulations are pure Python, so
processes -- not threads -- buy real speedup), and aggregates
replications per cell.

The point function must be a *module-level picklable callable*
``fn(point: dict, seed: int) -> float`` when ``workers > 1``.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.stats import Aggregate
from repro.errors import SweepError

PointFn = Callable[[dict, int], float]


@dataclass(frozen=True)
class SweepCell:
    """One grid point's aggregated result."""

    point: dict
    aggregate: Aggregate


def grid_points(grid: Mapping[str, Sequence]) -> list[dict]:
    """Expand ``{param: [values...]}`` into the cross-product of dicts,
    in deterministic (insertion x value) order."""
    keys = list(grid)
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[k] for k in keys))
    ]


def run_sweep(
    fn: PointFn,
    grid: Mapping[str, Sequence],
    seeds: Sequence[int],
    workers: int = 1,
) -> list[SweepCell]:
    """Evaluate ``fn(point, seed)`` over the full grid x seeds.

    Results are deterministic regardless of ``workers``: cells are
    emitted in grid order and each cell aggregates its seeds in order.

    A worker exception does not surface as an opaque pool traceback:
    it is wrapped in :class:`~repro.errors.SweepError` carrying the
    failing ``(point, seed)`` cell (with the original exception as
    ``__cause__``), so a 2000-cell sweep that dies names the one cell
    that killed it.
    """
    points = grid_points(grid)
    tasks = [(i, point, seed) for i, point in enumerate(points) for seed in seeds]
    values: dict[int, list[float]] = {i: [] for i in range(len(points))}

    if workers <= 1:
        for i, point, seed in tasks:
            try:
                value = fn(point, seed)
            except Exception as exc:
                raise SweepError(
                    f"sweep point {point!r} (seed {seed}) failed: {exc}",
                    point=point,
                    seed=seed,
                ) from exc
            values[i].append(value)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (i, point, seed, pool.submit(_invoke, (fn, point, seed)))
                for i, point, seed in tasks
            ]
            for i, point, seed, future in futures:
                try:
                    value = future.result()
                except Exception as exc:
                    raise SweepError(
                        f"sweep point {point!r} (seed {seed}) failed: {exc}",
                        point=point,
                        seed=seed,
                    ) from exc
                values[i].append(value)

    return [
        SweepCell(point=point, aggregate=Aggregate.of(values[i]))
        for i, point in enumerate(points)
    ]


def _invoke(args):
    fn, point, seed = args
    return fn(point, seed)


def sweep_table(
    cells: Sequence[SweepCell],
) -> tuple[list[str], list[list]]:
    """Render sweep cells as (headers, rows) for the table formatters."""
    if not cells:
        return [], []
    param_names = list(cells[0].point)
    headers = param_names + ["mean", "std", "n"]
    rows = [
        [cell.point[name] for name in param_names]
        + [cell.aggregate.mean, cell.aggregate.std, cell.aggregate.n]
        for cell in cells
    ]
    return headers, rows
