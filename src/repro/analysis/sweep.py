"""Parameter-sweep driver with optional process parallelism.

Experiments are embarrassingly parallel across (parameter point, seed)
cells; this driver runs a grid of workload/scheduler configurations,
optionally across worker processes (the simulations are pure Python, so
processes -- not threads -- buy real speedup), and aggregates
replications per cell.

The point function must be a *module-level picklable callable*
``fn(point: dict, seed: int) -> float`` when ``workers > 1``.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.analysis.stats import Aggregate
from repro.errors import SweepError

PointFn = Callable[[dict, int], float]


@dataclass(frozen=True)
class SweepCell:
    """One grid point's aggregated result."""

    point: dict
    aggregate: Aggregate


def grid_points(grid: Mapping[str, Sequence]) -> list[dict]:
    """Expand ``{param: [values...]}`` into the cross-product of dicts,
    in deterministic (insertion x value) order."""
    keys = list(grid)
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[k] for k in keys))
    ]


def adaptive_workers(
    probe: Optional[Callable[[int], float]] = None,
    max_workers: Optional[int] = None,
) -> int:
    """Pick a worker count the host can actually profit from.

    Process fan-out only pays when there are spare CPUs: on a 1-CPU
    box (or inside a cluster shard worker, which must not spawn its
    own pool) the answer is always 1, so callers that report parallel
    speedup never *claim* one the hardware cannot deliver.  With more
    CPUs the count is ``min(cpu_count, max_workers)``.

    ``probe``, when given, is ``probe(workers) -> seconds`` running a
    representative slice of the real work; the fan-out is kept only if
    the measured 2-worker round actually beats the serial round (pool
    startup and IPC can eat the win on small grids even with spare
    CPUs), otherwise the answer falls back to 1.
    """
    if os.environ.get("REPRO_CLUSTER_SHARD"):
        return 1
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        return 1
    workers = cpus if max_workers is None else max(1, min(cpus, max_workers))
    if workers <= 1 or probe is None:
        return workers
    serial_s = probe(1)
    parallel_s = probe(2)
    return workers if parallel_s < serial_s else 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """Decide the sweep worker count.

    An explicit ``workers`` argument wins; otherwise the
    ``REPRO_SWEEP_WORKERS`` environment variable; otherwise 1 (serial).
    ``0`` or ``"auto"`` (from either source) means one worker per CPU,
    and ``"adaptive"`` defers to :func:`adaptive_workers` (one worker
    per CPU, but never parallel on a 1-CPU host), so CI and shell
    one-liners can opt whole experiment grids into parallelism without
    touching call sites.

    Inside a cluster shard worker process (detected via the
    ``REPRO_CLUSTER_SHARD`` flag the shard spawner sets, see
    :data:`repro.cluster.shard.SHARD_ENV_FLAG`) the default is 1
    regardless of ``REPRO_SWEEP_WORKERS``: every shard spawning its own
    CPU-wide pool would oversubscribe the host multiplicatively.  An
    explicit ``workers`` argument still wins (except ``"adaptive"``,
    which also yields 1 inside a shard by definition).
    """
    source: Any = workers
    if source is None and os.environ.get("REPRO_CLUSTER_SHARD"):
        return 1
    if source is None:
        source = os.environ.get("REPRO_SWEEP_WORKERS", 1)
    if isinstance(source, str):
        text = source.strip().lower()
        if text == "auto":
            return os.cpu_count() or 1
        if text == "adaptive":
            return adaptive_workers()
        try:
            source = int(text)
        except ValueError as exc:
            raise SweepError(
                f"invalid sweep worker count {source!r} "
                "(expected an integer, 'auto' or 'adaptive')"
            ) from exc
    if source == 0:
        return os.cpu_count() or 1
    if source < 0:
        raise SweepError(f"sweep worker count must be >= 0, got {source}")
    return int(source)


def sweep_values(
    fn: Callable[[dict, int], Any],
    grid: Mapping[str, Sequence],
    seeds: Sequence[int],
    workers: Optional[int] = None,
) -> list[tuple[dict, list]]:
    """Evaluate ``fn(point, seed)`` over the full grid x seeds and return
    the raw per-point value lists, one ``(point, values)`` pair per grid
    point with values in seed order.

    This is the sharding core under :func:`run_sweep` for experiments
    whose cell values are not plain floats (tuples, ``nan`` markers for
    skipped seeds, ...): results are deterministic regardless of
    ``workers`` because cells are keyed by task order, and each cell's
    seeding is untouched -- ``fn`` receives exactly the same ``(point,
    seed)`` pairs it would serially.

    ``workers`` defaults to :func:`resolve_workers` (the
    ``REPRO_SWEEP_WORKERS`` environment variable, else serial).  A
    worker exception does not surface as an opaque pool traceback: it
    is wrapped in :class:`~repro.errors.SweepError` carrying the
    failing ``(point, seed)`` cell (with the original exception as
    ``__cause__``).
    """
    points = grid_points(grid)
    tasks = [(i, point, seed) for i, point in enumerate(points) for seed in seeds]
    values: dict[int, list] = {i: [] for i in range(len(points))}
    workers = resolve_workers(workers)

    if workers <= 1:
        for i, point, seed in tasks:
            try:
                value = fn(point, seed)
            except Exception as exc:
                raise SweepError(
                    f"sweep point {point!r} (seed {seed}) failed: {exc}",
                    point=point,
                    seed=seed,
                ) from exc
            values[i].append(value)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (i, point, seed, pool.submit(_invoke, (fn, point, seed)))
                for i, point, seed in tasks
            ]
            for i, point, seed, future in futures:
                try:
                    value = future.result()
                except Exception as exc:
                    raise SweepError(
                        f"sweep point {point!r} (seed {seed}) failed: {exc}",
                        point=point,
                        seed=seed,
                    ) from exc
                values[i].append(value)

    return [(point, values[i]) for i, point in enumerate(points)]


def run_sweep(
    fn: PointFn,
    grid: Mapping[str, Sequence],
    seeds: Sequence[int],
    workers: Optional[int] = None,
) -> list[SweepCell]:
    """Evaluate ``fn(point, seed)`` over the full grid x seeds.

    Results are deterministic regardless of ``workers``: cells are
    emitted in grid order and each cell aggregates its seeds in order.
    ``workers=None`` defers to :func:`resolve_workers` (explicit call
    sites keep working; the ``REPRO_SWEEP_WORKERS`` environment
    variable parallelizes everything routed through here).

    The point function must be a *module-level picklable callable*
    when the resolved worker count exceeds 1; see :func:`sweep_values`
    for the failure semantics.
    """
    return [
        SweepCell(point=point, aggregate=Aggregate.of(vals))
        for point, vals in sweep_values(fn, grid, seeds, workers=workers)
    ]


def _invoke(args):
    fn, point, seed = args
    return fn(point, seed)


def sweep_table(
    cells: Sequence[SweepCell],
) -> tuple[list[str], list[list]]:
    """Render sweep cells as (headers, rows) for the table formatters."""
    if not cells:
        return [], []
    param_names = list(cells[0].point)
    headers = param_names + ["mean", "std", "n"]
    rows = [
        [cell.point[name] for name in param_names]
        + [cell.aggregate.mean, cell.aggregate.std, cell.aggregate.n]
        for cell in cells
    ]
    return headers, rows
