"""Offline clairvoyant schedule search: stronger OPT *lower* bounds.

The LP/MILP bounds over-estimate OPT; the scheduler portfolio
(:func:`repro.analysis.opt.best_effort_lower_bound`) under-estimates
it.  This module tightens the lower side with randomized search over
*hindsight-admission* schedules:

1. sample a priority order over jobs (biased toward high density);
2. run a work-conserving list scheduler with clairvoyant critical-path
   node picking under that order;
3. **hindsight pruning**: drop every job that missed its deadline and
   re-run with the capacity they wasted freed up — repeat until the
   kept set is stable (every kept job completes on time);
4. keep the best profit over many restarts.

Every returned schedule is actually simulated, so the result is a
certified achievable profit — a valid lower bound on OPT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import ListScheduler
from repro.sim.engine import Simulator
from repro.sim.jobs import JobSpec, JobView
from repro.sim.picker import CriticalPathPicker


class _FixedOrder(ListScheduler):
    """Work-conserving list scheduler with an externally fixed order."""

    def __init__(self, rank: dict[int, int]) -> None:
        super().__init__()
        self.rank = rank

    def priority(self, job: JobView, t: int) -> tuple[int, int]:
        return (self.rank.get(job.job_id, 1 << 30), job.job_id)


@dataclass(frozen=True)
class OfflineSearchResult:
    """Outcome of the randomized offline search."""

    profit: float
    #: job ids served on time by the best schedule found
    kept: tuple[int, ...]
    restarts: int


def _run_with_pruning(
    specs: Sequence[JobSpec], m: int, rank: dict[int, int], max_rounds: int = 8
) -> tuple[float, tuple[int, ...]]:
    """Run the fixed order, repeatedly dropping deadline-missers."""
    active = list(specs)
    for _ in range(max_rounds):
        sim = Simulator(
            m=m, scheduler=_FixedOrder(rank), picker=CriticalPathPicker()
        )
        result = sim.run(active)
        losers = [
            rec.job_id for rec in result.records.values() if not rec.on_time
        ]
        if not losers:
            return result.total_profit, tuple(sorted(
                rec.job_id for rec in result.records.values() if rec.on_time
            ))
        loser_set = set(losers)
        active = [sp for sp in active if sp.job_id not in loser_set]
        if not active:
            return 0.0, ()
    # did not stabilize (cannot happen: the kept set shrinks every round)
    return result.total_profit, tuple(
        sorted(rec.job_id for rec in result.records.values() if rec.on_time)
    )  # pragma: no cover


def randomized_offline_search(
    specs: Sequence[JobSpec],
    m: int,
    restarts: int = 24,
    rng: Optional[np.random.Generator | int] = None,
) -> OfflineSearchResult:
    """Best certified-achievable profit over randomized restarts.

    Deadline jobs only.  The first restarts use deterministic seed
    orders -- density-descending, EDF (deadline-ascending), and
    laxity-ascending -- so the result never loses to those greedy
    schedules *with hindsight pruning applied*; remaining restarts
    sample Gumbel-perturbed density orders, making every order
    reachable.
    """
    if any(sp.deadline is None for sp in specs):
        raise ValueError("offline search requires deadline jobs")
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    specs = list(specs)
    if not specs:
        return OfflineSearchResult(profit=0.0, kept=(), restarts=0)

    densities = np.array(
        [sp.profit / sp.work if sp.work > 0 else 0.0 for sp in specs]
    )
    deadlines = np.array([float(sp.deadline) for sp in specs])
    laxities = np.array(
        [sp.deadline - sp.arrival - sp.work / m for sp in specs]
    )
    ids = [sp.job_id for sp in specs]

    seed_orders = [
        np.argsort(-densities, kind="stable"),
        np.argsort(deadlines, kind="stable"),
        np.argsort(laxities, kind="stable"),
    ]

    best_profit = -1.0
    best_kept: tuple[int, ...] = ()
    for attempt in range(restarts):
        if attempt < len(seed_orders):
            order = seed_orders[attempt]
        else:
            # Gumbel-perturbed density ranking: denser jobs earlier in
            # expectation, every order reachable
            noise = rng.gumbel(size=len(specs))
            scores = np.log(np.maximum(densities, 1e-12)) + noise
            order = np.argsort(-scores, kind="stable")
        rank = {ids[idx]: pos for pos, idx in enumerate(order)}
        profit, kept = _run_with_pruning(specs, m, rank)
        if profit > best_profit:
            best_profit = profit
            best_kept = kept
    return OfflineSearchResult(
        profit=max(best_profit, 0.0), kept=best_kept, restarts=restarts
    )
