"""Replication and aggregation helpers for seed sweeps."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


@dataclass(frozen=True)
class Aggregate:
    """Mean / spread of replicated measurements."""

    mean: float
    std: float
    lo: float
    hi: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Aggregate":
        """Aggregate a sample; ``lo``/``hi`` is a normal-approximation
        95% confidence interval on the mean."""
        arr = np.asarray([v for v in values if not math.isnan(v)], dtype=np.float64)
        if arr.size == 0:
            nan = float("nan")
            return cls(nan, nan, nan, nan, 0)
        mean = float(arr.mean())
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        half = 1.96 * std / math.sqrt(arr.size) if arr.size > 1 else 0.0
        return cls(mean=mean, std=std, lo=mean - half, hi=mean + half, n=int(arr.size))

    def __str__(self) -> str:
        return f"{self.mean:.4g} +/- {self.hi - self.mean:.2g}"


def replicate(fn: Callable[[int], float], seeds: Sequence[int]) -> Aggregate:
    """Run ``fn(seed)`` per seed and aggregate the returned scalars."""
    return Aggregate.of([fn(seed) for seed in seeds])


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (competitive ratios average multiplicatively)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0 or np.any(arr <= 0):
        return float("nan")
    return float(np.exp(np.mean(np.log(arr))))
