"""Upper and lower bounds on the clairvoyant optimal schedule (OPT).

Exactly computing OPT for DAG jobs with deadlines on ``m`` machines is
intractable, so competitive ratios are reported against bounds:

* :func:`interval_lp_upper_bound` -- an LP relaxation: fractional job
  selection with work conservation over elementary time intervals and
  machine-capacity constraints.  Every feasible schedule satisfies its
  constraints, so the LP optimum is a valid *upper* bound on OPT's
  profit; measured competitive ratios are therefore conservative
  (pessimistic for the algorithm under test).
* :func:`feasible_profit_bound` -- the cruder bound: the profit of all
  jobs that are individually feasible (``D >= max(L, W/m)``).
* :func:`best_effort_lower_bound` -- constructive *lower* bound: the
  best profit achieved by a portfolio of schedulers with clairvoyant
  node picking.  OPT is somewhere between the two.

The general-profit setting reduces to the LP by enumerating the pieces
of each profit function: completing "by the end of piece k" is a job
variant worth that piece's profit, and OPT picks at most one variant
per job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
import scipy.optimize
import scipy.sparse

from repro.profit.functions import ProfitFunction, Staircase, StepProfit
from repro.sim.jobs import JobSpec


@dataclass(frozen=True)
class _Variant:
    """One (job, deadline, profit) choice offered to the LP."""

    job_index: int
    release: int
    deadline: int
    work: float
    span: float
    profit: float


def _spec_variants(
    spec: JobSpec, job_index: int, m: int, pieces: int = 6
) -> list[_Variant]:
    """Enumerate deadline variants of a job for the LP."""
    if spec.deadline is not None:
        return [
            _Variant(
                job_index,
                spec.arrival,
                spec.deadline,
                spec.work,
                spec.span,
                spec.profit,
            )
        ]
    fn = spec.profit_fn
    assert fn is not None
    min_time = math.ceil(max(spec.span, spec.work / m))
    candidates = _profit_deadlines(fn, min_time, pieces)
    variants = []
    for rel in candidates:
        profit = float(fn(rel))
        if profit <= 0:
            continue
        variants.append(
            _Variant(
                job_index,
                spec.arrival,
                spec.arrival + rel,
                spec.work,
                spec.span,
                profit,
            )
        )
    return variants


def _profit_deadlines(fn: ProfitFunction, min_time: int, pieces: int) -> list[int]:
    """Candidate relative deadlines covering the profit function's range."""
    candidates: set[int] = set()
    knee = max(min_time, math.floor(fn.x_star))
    candidates.add(knee)
    if isinstance(fn, StepProfit):
        pass  # knee is everything
    elif isinstance(fn, Staircase):
        for bt, _ in fn.levels:
            candidates.add(max(min_time, math.floor(bt)))
    else:
        horizon = fn.horizon(fn.peak * 0.01)
        if not math.isfinite(horizon):
            horizon = 4.0 * max(knee, 1)
        horizon = max(horizon, knee + 1)
        for frac in np.linspace(0.0, 1.0, pieces):
            candidates.add(max(min_time, math.floor(knee + frac * (horizon - knee))))
    return sorted(candidates)


@dataclass
class _IntervalProgram:
    """The shared (MI)LP: selection variables then work variables."""

    c: "np.ndarray"
    a_eq: "scipy.sparse.coo_matrix"
    b_eq: "np.ndarray"
    a_ub: Optional["scipy.sparse.coo_matrix"]
    b_ub: Optional["np.ndarray"]
    n_selection: int
    n_cols: int


def _build_interval_program(
    specs: Sequence[JobSpec], m: int, pieces: int = 6
) -> Optional[_IntervalProgram]:
    """Construct the interval program shared by the LP and MILP bounds.

    Variables: per variant ``v`` a selection ``z_v in [0, 1]`` and per
    (variant, elementary interval) the work ``y_{v,k} >= 0`` done there.
    Constraints: selected work adds up (``sum_k y = W z``), intervals
    respect machine capacity, at most one variant per job, and variants
    whose window is below ``max(L, W/m)`` are dropped (no schedule can
    finish them).  Returns ``None`` when no variant survives.
    """
    variants: list[_Variant] = []
    for i, spec in enumerate(specs):
        for var in _spec_variants(spec, i, m, pieces):
            window = var.deadline - var.release
            if window + 1e-9 < max(var.span, var.work / m):
                continue
            variants.append(var)
    if not variants:
        return None

    points = sorted(
        {v.release for v in variants} | {v.deadline for v in variants}
    )
    intervals = [
        (a, b) for a, b in zip(points, points[1:]) if b > a
    ]
    interval_index = {iv: k for k, iv in enumerate(intervals)}

    # Variable layout: [z_0..z_{V-1}, y...]; record each y column's
    # owning variant and interval as we number them.
    n_var = len(variants)
    variant_cols: list[list[int]] = [[] for _ in variants]
    interval_cols: list[list[int]] = [[] for _ in intervals]
    next_col = n_var
    for vi, var in enumerate(variants):
        for iv in intervals:
            if var.release <= iv[0] and iv[1] <= var.deadline:
                variant_cols[vi].append(next_col)
                interval_cols[interval_index[iv]].append(next_col)
                next_col += 1
    n_cols = next_col

    rows_eq: list[int] = []
    cols_eq: list[int] = []
    vals_eq: list[float] = []
    # (1) sum_k y_{v,k} - W_v z_v = 0
    for vi, var in enumerate(variants):
        for col in variant_cols[vi]:
            rows_eq.append(vi)
            cols_eq.append(col)
            vals_eq.append(1.0)
        rows_eq.append(vi)
        cols_eq.append(vi)
        vals_eq.append(-var.work)
    a_eq = scipy.sparse.coo_matrix(
        (vals_eq, (rows_eq, cols_eq)), shape=(n_var, n_cols)
    )
    b_eq = np.zeros(n_var)

    rows_ub: list[int] = []
    cols_ub: list[int] = []
    vals_ub: list[float] = []
    b_ub: list[float] = []
    row = 0
    # (2) capacity per interval
    for k, (a, b) in enumerate(intervals):
        cols = interval_cols[k]
        if not cols:
            continue
        for col in cols:
            rows_ub.append(row)
            cols_ub.append(col)
            vals_ub.append(1.0)
        b_ub.append(m * (b - a))
        row += 1
    # (3) at most one variant per job
    by_job: dict[int, list[int]] = {}
    for vi, var in enumerate(variants):
        by_job.setdefault(var.job_index, []).append(vi)
    for job_variants in by_job.values():
        if len(job_variants) == 1:
            continue  # z <= 1 bound suffices
        for vi in job_variants:
            rows_ub.append(row)
            cols_ub.append(vi)
            vals_ub.append(1.0)
        b_ub.append(1.0)
        row += 1
    a_ub = (
        scipy.sparse.coo_matrix(
            (vals_ub, (rows_ub, cols_ub)), shape=(row, n_cols)
        )
        if row
        else None
    )

    c = np.zeros(n_cols)
    for vi, var in enumerate(variants):
        c[vi] = -var.profit  # minimization form

    return _IntervalProgram(
        c=c,
        a_eq=a_eq,
        b_eq=b_eq,
        a_ub=a_ub,
        b_ub=np.asarray(b_ub) if row else None,
        n_selection=n_var,
        n_cols=n_cols,
    )


def interval_lp_upper_bound(
    specs: Sequence[JobSpec], m: int, pieces: int = 6
) -> float:
    """LP-relaxation upper bound on OPT's total profit (speed 1).

    See :func:`_build_interval_program` for the formulation.  Every
    feasible schedule satisfies the constraints, so the LP optimum is a
    valid upper bound on OPT.
    """
    program = _build_interval_program(specs, m, pieces)
    if program is None:
        return 0.0
    bounds = [(0.0, 1.0)] * program.n_selection + [(0.0, None)] * (
        program.n_cols - program.n_selection
    )
    result = scipy.optimize.linprog(
        program.c,
        A_ub=program.a_ub,
        b_ub=program.b_ub,
        A_eq=program.a_eq,
        b_eq=program.b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"OPT LP failed: {result.message}")
    return float(-result.fun)


def interval_milp_upper_bound(
    specs: Sequence[JobSpec], m: int, pieces: int = 6
) -> float:
    """Integral (MILP) variant of the interval bound: selection
    variables are binary, so jobs cannot be fractionally completed.

    Strictly tighter than :func:`interval_lp_upper_bound` (still an
    upper bound on OPT -- the work variables remain continuous and
    migration/precedence are still relaxed).  Exponential worst case;
    intended for small/medium instances where tighter ratios matter.
    """
    program = _build_interval_program(specs, m, pieces)
    if program is None:
        return 0.0
    integrality = np.zeros(program.n_cols)
    integrality[: program.n_selection] = 1  # z binary
    lower = np.zeros(program.n_cols)
    upper = np.full(program.n_cols, np.inf)
    upper[: program.n_selection] = 1.0
    constraints = [
        scipy.optimize.LinearConstraint(
            program.a_eq, program.b_eq, program.b_eq
        )
    ]
    if program.a_ub is not None:
        constraints.append(
            scipy.optimize.LinearConstraint(
                program.a_ub, -np.inf, program.b_ub
            )
        )
    result = scipy.optimize.milp(
        program.c,
        constraints=constraints,
        integrality=integrality,
        bounds=scipy.optimize.Bounds(lower, upper),
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"OPT MILP failed: {result.message}")
    return float(-result.fun)


def feasible_profit_bound(specs: Sequence[JobSpec], m: int) -> float:
    """Sum of profits of individually feasible jobs -- a crude but very
    fast upper bound on OPT."""
    total = 0.0
    for spec in specs:
        if spec.deadline is not None:
            window = spec.deadline - spec.arrival
            if window + 1e-9 >= max(spec.span, spec.work / m):
                total += spec.profit
        else:
            fn = spec.profit_fn
            assert fn is not None
            min_time = math.ceil(max(spec.span, spec.work / m))
            total += float(fn(min_time))
    return total


def best_effort_lower_bound(
    specs: Sequence[JobSpec],
    m: int,
    seed: int = 0,
) -> float:
    """Constructive lower bound on OPT: best profit over a clairvoyant
    scheduler portfolio (EDF / greedy density / FIFO, critical-path
    node picking, speed 1)."""
    from repro.baselines import FIFOScheduler, GlobalEDF, GreedyDensity
    from repro.sim.engine import Simulator
    from repro.sim.picker import CriticalPathPicker

    best = 0.0
    for factory in (
        lambda: GlobalEDF(skip_hopeless=True),
        GreedyDensity,
        FIFOScheduler,
    ):
        sim = Simulator(m=m, scheduler=factory(), picker=CriticalPathPicker())
        best = max(best, sim.run(list(specs)).total_profit)
    return best


def opt_bound(
    specs: Sequence[JobSpec],
    m: int,
    method: str = "lp",
    pieces: int = 6,
) -> float:
    """Dispatch: ``"milp"`` (tightest, exponential worst case), ``"lp"``
    (tight, polynomial) or ``"feasible"`` (fast, crude)."""
    if method == "milp":
        return interval_milp_upper_bound(specs, m, pieces=pieces)
    if method == "lp":
        return interval_lp_upper_bound(specs, m, pieces=pieces)
    if method == "feasible":
        return feasible_profit_bound(specs, m)
    raise ValueError(f"unknown OPT bound method {method!r}")
