"""Validation of profit functions against the paper's assumptions.

Theorem 3 requires each job's profit function to be (a) non-negative,
(b) non-increasing, and (c) flat up to
:math:`x^* \\ge (1+\\epsilon)((W-L)/m + L)`.  These checks are sampled
numerically; they are used by workload generators (to certify generated
workloads) and by tests.
"""

from __future__ import annotations

import numpy as np

from repro.profit.functions import ProfitFunction


def check_non_increasing(
    fn: ProfitFunction, t_max: float, samples: int = 256, tol: float = 1e-9
) -> bool:
    """Sampled monotonicity check of ``fn`` on ``[0, t_max]``."""
    ts = np.linspace(0.0, float(t_max), samples)
    values = np.array([fn(t) for t in ts])
    if np.any(values < -tol):
        return False
    return bool(np.all(np.diff(values) <= tol))


def check_flat_until(
    fn: ProfitFunction, x_star: float, samples: int = 64, tol: float = 1e-9
) -> bool:
    """Whether ``fn`` is constant on ``[0, x_star]`` (sampled)."""
    if x_star <= 0:
        return True
    ts = np.linspace(0.0, float(x_star), samples)
    values = np.array([fn(t) for t in ts])
    return bool(np.all(np.abs(values - values[0]) <= tol))


def check_theorem3_assumption(
    fn: ProfitFunction,
    work: float,
    span: float,
    m: int,
    epsilon: float,
) -> bool:
    """Whether ``fn`` satisfies Theorem 3's flatness assumption for a job
    with the given ``work``/``span`` on ``m`` processors:
    ``x_star >= (1+epsilon) * ((W - L)/m + L)`` and flat until
    ``x_star``."""
    required = (1.0 + epsilon) * ((work - span) / m + span)
    if fn.x_star < required - 1e-9:
        return False
    return check_flat_until(fn, fn.x_star)


def validate_profit_function(
    fn: ProfitFunction, t_max: float | None = None
) -> list[str]:
    """Return a list of violated properties (empty = all good)."""
    problems: list[str] = []
    if fn.peak < 0:
        problems.append("peak is negative")
    if fn.x_star < 0:
        problems.append("x_star is negative")
    if abs(fn(0.0) - fn.peak) > 1e-9:
        problems.append("p(0) != peak")
    horizon = t_max if t_max is not None else max(4.0 * fn.x_star + 16.0, 64.0)
    if not check_non_increasing(fn, horizon):
        problems.append("function increases somewhere")
    if not check_flat_until(fn, fn.x_star):
        problems.append("function decays before x_star")
    return problems
