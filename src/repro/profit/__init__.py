"""Profit-function substrate for the general-profit setting (paper §5)."""

from repro.profit.functions import (
    ProfitFunction,
    StepProfit,
    FlatThenLinear,
    FlatThenExponential,
    Staircase,
    from_deadline,
)
from repro.profit.serialize import profit_fn_from_dict, profit_fn_to_dict
from repro.profit.validate import (
    check_non_increasing,
    check_flat_until,
    check_theorem3_assumption,
    validate_profit_function,
)

__all__ = [
    "ProfitFunction",
    "StepProfit",
    "FlatThenLinear",
    "FlatThenExponential",
    "Staircase",
    "from_deadline",
    "profit_fn_from_dict",
    "profit_fn_to_dict",
    "check_non_increasing",
    "check_flat_until",
    "check_theorem3_assumption",
    "validate_profit_function",
]
