"""Serialization of profit functions (dict / JSON).

Used by :mod:`repro.workloads.serialize` so whole workloads round-trip
to disk.  Each concrete class maps to a ``kind`` tag; unknown tags are
rejected loudly.
"""

from __future__ import annotations

from typing import Any

from repro.profit.functions import (
    FlatThenExponential,
    FlatThenLinear,
    ProfitFunction,
    Staircase,
    StepProfit,
)


def profit_fn_to_dict(fn: ProfitFunction) -> dict[str, Any]:
    """Serialize a profit function to a JSON-compatible dict."""
    if isinstance(fn, StepProfit):
        return {"kind": "step", "peak": fn.peak, "x_star": fn.x_star}
    if isinstance(fn, FlatThenLinear):
        return {
            "kind": "flat_linear",
            "peak": fn.peak,
            "x_star": fn.x_star,
            "decay_span": fn.decay_span,
        }
    if isinstance(fn, FlatThenExponential):
        return {
            "kind": "flat_exponential",
            "peak": fn.peak,
            "x_star": fn.x_star,
            "tau": fn.tau,
        }
    if isinstance(fn, Staircase):
        return {
            "kind": "staircase",
            "peak": fn.peak,
            "levels": [[t, p] for t, p in fn.levels],
        }
    raise TypeError(f"cannot serialize profit function of type {type(fn).__name__}")


def profit_fn_from_dict(data: dict[str, Any]) -> ProfitFunction:
    """Rebuild a profit function from :func:`profit_fn_to_dict` output."""
    kind = data.get("kind")
    if kind == "step":
        return StepProfit(data["peak"], data["x_star"])
    if kind == "flat_linear":
        return FlatThenLinear(data["peak"], data["x_star"], data["decay_span"])
    if kind == "flat_exponential":
        return FlatThenExponential(data["peak"], data["x_star"], data["tau"])
    if kind == "staircase":
        return Staircase(data["peak"], [(t, p) for t, p in data["levels"]])
    raise ValueError(f"unknown profit function kind {kind!r}")
