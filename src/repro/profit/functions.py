"""Non-increasing profit functions :math:`p_i(t)`.

The general-profit setting (paper Section 5) attaches to each job an
arbitrary non-negative, non-increasing function of its *relative*
completion time.  Theorem 3 additionally assumes the function is flat up
to some :math:`x_i^*` -- "no additional benefit for completing before
``x*``" -- which every class here models via an explicit ``x_star``
attribute (the knee where decay may begin).

All functions are callable (``fn(t) -> float``) and expose:

* ``peak`` -- the flat initial value :math:`p(0) = p(x^*)`;
* ``x_star`` -- the knee;
* ``horizon(threshold)`` -- the earliest ``t`` with ``p(t) <= threshold``
  (possibly ``inf``), which schedulers use to bound deadline searches.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable


@runtime_checkable
class ProfitFunction(Protocol):
    """Structural type of a profit function."""

    peak: float
    x_star: float

    def __call__(self, t: float) -> float:
        """Profit for completing ``t`` after arrival."""
        ...

    def horizon(self, threshold: float = 0.0) -> float:
        """Earliest ``t`` with ``p(t) <= threshold`` (``inf`` if never)."""
        ...


class _Base:
    """Shared validation for concrete profit functions."""

    def __init__(self, peak: float, x_star: float) -> None:
        if peak < 0:
            raise ValueError("peak profit must be non-negative")
        if x_star < 0:
            raise ValueError("x_star must be non-negative")
        self.peak = float(peak)
        self.x_star = float(x_star)

    def __call__(self, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def horizon(self, threshold: float = 0.0) -> float:  # pragma: no cover
        raise NotImplementedError


class StepProfit(_Base):
    """The throughput special case: ``peak`` until ``x_star``, then 0.

    Equivalent to a deadline at relative time ``x_star``.
    """

    def __call__(self, t: float) -> float:
        return self.peak if t <= self.x_star else 0.0

    def horizon(self, threshold: float = 0.0) -> float:
        """Earliest ``t`` with ``p(t) <= threshold``."""
        if self.peak <= threshold:
            return 0.0
        return self.x_star + 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"StepProfit(peak={self.peak:g}, x_star={self.x_star:g})"


class FlatThenLinear(_Base):
    """Flat at ``peak`` until ``x_star``, then linear decay to 0.

    ``p(t) = peak * max(0, 1 - (t - x_star)/decay_span)`` for
    ``t > x_star``.
    """

    def __init__(self, peak: float, x_star: float, decay_span: float) -> None:
        super().__init__(peak, x_star)
        if decay_span <= 0:
            raise ValueError("decay_span must be positive")
        self.decay_span = float(decay_span)

    def __call__(self, t: float) -> float:
        if t <= self.x_star:
            return self.peak
        frac = 1.0 - (t - self.x_star) / self.decay_span
        return self.peak * frac if frac > 0 else 0.0

    def horizon(self, threshold: float = 0.0) -> float:
        """Earliest ``t`` with ``p(t) <= threshold`` (linear inverse)."""
        if self.peak <= threshold:
            return 0.0
        if threshold <= 0:
            return self.x_star + self.decay_span
        return self.x_star + self.decay_span * (1.0 - threshold / self.peak)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FlatThenLinear(peak={self.peak:g}, x_star={self.x_star:g}, "
            f"decay_span={self.decay_span:g})"
        )


class FlatThenExponential(_Base):
    """Flat at ``peak`` until ``x_star``, then exponential decay.

    ``p(t) = peak * exp(-(t - x_star)/tau)`` for ``t > x_star``.
    Never reaches zero; ``horizon`` solves for the threshold.
    """

    def __init__(self, peak: float, x_star: float, tau: float) -> None:
        super().__init__(peak, x_star)
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = float(tau)

    def __call__(self, t: float) -> float:
        if t <= self.x_star:
            return self.peak
        return self.peak * math.exp(-(t - self.x_star) / self.tau)

    def horizon(self, threshold: float = 0.0) -> float:
        """Earliest ``t`` with ``p(t) <= threshold`` (``inf`` for 0)."""
        if self.peak <= threshold:
            return 0.0
        if threshold <= 0:
            return math.inf
        return self.x_star + self.tau * math.log(self.peak / threshold)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FlatThenExponential(peak={self.peak:g}, x_star={self.x_star:g}, "
            f"tau={self.tau:g})"
        )


class Staircase(_Base):
    """Piecewise-constant decay: profit drops after each breakpoint.

    Parameters
    ----------
    peak:
        Profit on ``[0, t_0]``.
    levels:
        ``[(t_0, p_0), (t_1, p_1), ...]`` with strictly increasing
        ``t_k`` and non-increasing ``peak >= p_0 >= p_1 >= ...``.
        For ``t_k < t <= t_{k+1}`` the profit is ``p_k``; after the last
        breakpoint it stays at ``p_last``.  ``t_0`` is the ``x_star``
        knee.
    """

    def __init__(self, peak: float, levels: list[tuple[float, float]]) -> None:
        if not levels:
            raise ValueError("levels must be non-empty")
        times = [t for t, _ in levels]
        values = [p for _, p in levels]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("breakpoint times must be strictly increasing")
        seq = [peak] + values
        if any(b > a + 1e-12 for a, b in zip(seq, seq[1:])):
            raise ValueError("profit levels must be non-increasing")
        if any(v < 0 for v in values):
            raise ValueError("profit levels must be non-negative")
        super().__init__(peak, times[0])
        self.levels = [(float(t), float(p)) for t, p in levels]

    def __call__(self, t: float) -> float:
        value = self.peak
        for bt, bp in self.levels:
            if t > bt:
                value = bp
            else:
                break
        return value

    def horizon(self, threshold: float = 0.0) -> float:
        """Earliest ``t`` with ``p(t) <= threshold`` (first breakpoint
        whose level falls to the threshold)."""
        if self.peak <= threshold:
            return 0.0
        for bt, bp in self.levels:
            if bp <= threshold:
                # profit becomes bp immediately after bt
                return bt + 1
        return math.inf

    def __repr__(self) -> str:  # pragma: no cover
        return f"Staircase(peak={self.peak:g}, levels={self.levels!r})"


def from_deadline(profit: float, relative_deadline: float) -> StepProfit:
    """Build the step function equivalent to a (profit, deadline) pair."""
    return StepProfit(peak=profit, x_star=relative_deadline)
