"""Profiling hooks: wall-clock timing of named engine hot-path sections.

A :class:`Profiler` owns one :class:`~repro.observability.metrics.
RingHistogram` per named section.  The engine hoists the sections it
times (``allocate`` -- one scheduler decision, i.e. decision latency --
and ``execute`` -- one chunk execution) into locals at session start,
so the per-decision cost with no profiler attached is a single ``None``
check.

Wall-clock readings never enter simulated state: profiling a run
changes nothing about its records, counters, or profit (the same
bit-identity contract tracing obeys), it only *observes* where the
wall time goes.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.observability.metrics import RingHistogram


class Profiler:
    """Named hot-path section timings backed by ring histograms."""

    __slots__ = ("sections", "capacity")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("profiler capacity must be >= 1")
        #: section name -> RingHistogram of seconds per invocation
        self.sections: dict[str, RingHistogram] = {}
        self.capacity = int(capacity)

    def section(self, name: str) -> RingHistogram:
        """Get (or lazily create) the histogram for section ``name``.

        Hot paths call this once per session and then ``observe``
        elapsed ``time.perf_counter`` deltas directly on the result.
        """
        hist = self.sections.get(name)
        if hist is None:
            hist = self.sections[name] = RingHistogram(
                name, capacity=self.capacity
            )
        return hist

    def time(self, name: str) -> "_Timer":
        """Context manager timing one block into section ``name``.

        >>> profiler = Profiler()
        >>> with profiler.time("setup"):
        ...     pass
        >>> profiler.section("setup").count
        1
        """
        return _Timer(self.section(name))

    def summary(self) -> dict[str, dict[str, Any]]:
        """Per-section summaries (see :meth:`RingHistogram.summary`),
        sorted by total time descending."""
        return {
            name: hist.summary()
            for name, hist in sorted(
                self.sections.items(),
                key=lambda item: -item[1].total,
            )
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Profiler(sections={sorted(self.sections)})"


class _Timer:
    """Context manager recording one elapsed interval into a histogram."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: RingHistogram) -> None:
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._hist.observe(perf_counter() - self._start)
