"""Span reconstruction and trace-completeness invariants.

A recorded trace (see :mod:`repro.observability.recorder`) is a flat
event sequence; this module folds it back into *spans* -- one lifecycle
span per job, plus per-machine execution intervals -- and checks the
invariants the property tests pin down:

* every job that appears in a trace has **exactly one terminal event**
  (completed, deadline-missed, shed, abandoned, or cluster-shed);
* execution slices fall inside the owning job's lifecycle span, and the
  per-machine intervals derived from them never overlap (a machine
  runs one node at a time);
* the profit recomputed from completion events is bit-equal to the
  engine-reported profit (same float addition order per shard).

All helpers accept events either as the recorder's native tuples or as
the dicts :func:`repro.observability.export.read_jsonl` yields after a
round-trip through JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.observability.recorder import event_data

#: Event kinds that close a job's lifecycle span, mapped to the
#: terminal state name the span reports.
TERMINAL_KINDS: dict[str, str] = {
    "completion": "completed",
    "expiry": "missed",
    "abandon": "abandoned",
    "shed": "shed",
    "cluster-shed": "shed",
}

#: Event kinds that mark a job as *submitted* (the span-completeness
#: universe: every one of these jobs must reach exactly one terminal).
SUBMIT_KINDS: tuple[str, ...] = ("submit", "arrival", "route")


def _as_tuple(event: Any) -> tuple:
    """Normalize one event (tuple or exported dict) to the tuple form.

    Deferred slice payloads (``SliceData``) are rendered here, so every
    downstream helper sees plain JSON-compatible dicts.
    """
    if isinstance(event, dict):
        return (
            event.get("seq", 0),
            event.get("shard"),
            event["t"],
            event["kind"],
            event.get("job"),
            event.get("data"),
        )
    data = event_data(event)
    if data is not event[5]:
        return event[:5] + (data,)
    return event


@dataclass
class JobSpan:
    """One job's reconstructed lifecycle span."""

    job_id: int
    #: first time the job appears in the trace
    start: Optional[int] = None
    #: time of the terminal event (None = span still open)
    end: Optional[int] = None
    #: terminal state ("completed" / "missed" / "shed" / "abandoned")
    terminal: Optional[str] = None
    #: profit carried by the completion event (0.0 otherwise)
    profit: float = 0.0
    #: admission payload (n / x / v / admitted), when recorded
    admission: Optional[dict] = None
    #: shard that produced the terminal event
    shard: Optional[int] = None
    #: every terminal event seen (len != 1 is an invariant violation)
    terminal_events: list[tuple] = field(default_factory=list)


def build_spans(events: Iterable[Any]) -> dict[int, JobSpan]:
    """Fold a trace into one :class:`JobSpan` per job id.

    Never raises on malformed traces -- duplicate terminals are
    collected into :attr:`JobSpan.terminal_events` so
    :func:`validate_trace` can report them.
    """
    spans: dict[int, JobSpan] = {}
    for event in events:
        _seq, shard, t, kind, job_id, data = _as_tuple(event)
        if job_id is None:
            continue
        span = spans.get(job_id)
        if span is None:
            span = spans[job_id] = JobSpan(job_id=job_id, start=t)
        if span.start is None or t < span.start:
            span.start = t
        if kind == "admission" and data:
            span.admission = dict(data)
        terminal = TERMINAL_KINDS.get(kind)
        if terminal is not None:
            span.terminal_events.append((t, kind, shard))
            span.terminal = terminal
            span.end = t
            span.shard = shard
            if kind == "completion" and data:
                span.profit = float(data.get("profit", 0.0))
    return spans


def submitted_ids(events: Iterable[Any]) -> set[int]:
    """Every job id the trace saw submitted (see :data:`SUBMIT_KINDS`)."""
    ids: set[int] = set()
    for event in events:
        _seq, _shard, _t, kind, job_id, _data = _as_tuple(event)
        if job_id is not None and kind in SUBMIT_KINDS:
            ids.add(job_id)
    return ids


def machine_intervals(
    events: Iterable[Any],
) -> dict[tuple[Optional[int], int], list[tuple[int, int, int]]]:
    """Expand execution slices into per-machine busy intervals.

    Each ``slice`` event carries ``(job_id, procs, nodes)`` entries for
    one frozen allocation over ``[t, t1)``; machines (lanes) are
    assigned cumulatively in entry order, which is deterministic because
    the engine emits entries in assignment order.  Returns
    ``{(shard, machine): [(t0, t1, job_id), ...]}`` with each machine's
    intervals in trace order.
    """
    lanes: dict[tuple[Optional[int], int], list[tuple[int, int, int]]] = {}
    for event in events:
        _seq, shard, t0, kind, _job, data = _as_tuple(event)
        if kind != "slice" or not data:
            continue
        t1 = data["t1"]
        offset = 0
        for entry in data.get("entries", ()):
            job_id, procs = int(entry[0]), int(entry[1])
            for lane in range(offset, offset + procs):
                lanes.setdefault((shard, lane), []).append(
                    (t0, t1, job_id)
                )
            offset += procs
    return lanes


def recompute_profit(events: Iterable[Any]) -> float:
    """Sum of profit over completion events, in trace order.

    Per shard this is the same float addition order the engine's record
    table uses (expired/abandoned records contribute exactly ``0.0``),
    so the result is bit-equal to the engine-reported total profit.
    """
    total = 0.0
    for event in events:
        _seq, _shard, _t, kind, _job, data = _as_tuple(event)
        if kind == "completion" and data:
            total += float(data.get("profit", 0.0))
    return total


def recompute_profit_by_shard(
    events: Iterable[Any],
) -> dict[Optional[int], float]:
    """Per-shard completion-profit sums, each in trace order.

    Summing the returned values in shard-index order reproduces a
    cluster result's ``total_profit`` bit-for-bit (it sums per-shard
    profits in the same order).
    """
    totals: dict[Optional[int], float] = {}
    for event in events:
        _seq, shard, _t, kind, _job, data = _as_tuple(event)
        if kind == "completion" and data:
            totals[shard] = totals.get(shard, 0.0) + float(
                data.get("profit", 0.0)
            )
    return totals


def validate_trace(events: Sequence[Any]) -> list[str]:
    """Check every trace-completeness invariant; returns the violations.

    An empty list means the trace is well-formed:

    * every submitted job has exactly one terminal event;
    * no job has events outside its ``[start, end]`` lifecycle window;
    * per-machine execution intervals never overlap;
    * slice intervals are well-ordered (``t0 < t1``).
    """
    problems: list[str] = []
    normalized = [_as_tuple(ev) for ev in events]
    spans = build_spans(normalized)
    submitted = submitted_ids(normalized)

    for job_id in sorted(submitted):
        span = spans.get(job_id)
        n_term = len(span.terminal_events) if span is not None else 0
        if n_term == 0:
            problems.append(f"job {job_id}: submitted but no terminal event")
        elif n_term > 1:
            problems.append(
                f"job {job_id}: {n_term} terminal events "
                f"{span.terminal_events} (expected exactly 1)"
            )
    for job_id, span in sorted(spans.items()):
        if job_id not in submitted and span.terminal_events:
            problems.append(
                f"job {job_id}: orphaned terminal event "
                f"(no submit/arrival/route recorded)"
            )

    for ev in normalized:
        _seq, _shard, t0, kind, job_id, data = ev
        if kind == "slice" and data:
            t1 = data["t1"]
            if not t0 < t1:
                problems.append(f"slice at t={t0}: empty interval t1={t1}")
            for entry in data.get("entries", ()):
                span = spans.get(int(entry[0]))
                if span is None:
                    problems.append(
                        f"slice at t={t0}: unknown job {entry[0]}"
                    )
                elif span.end is not None and t0 >= span.end:
                    problems.append(
                        f"slice at t={t0}: job {entry[0]} already "
                        f"terminal at t={span.end}"
                    )

    for (shard, lane), intervals in sorted(
        machine_intervals(normalized).items(),
        key=lambda item: (item[0][0] is not None, item[0]),
    ):
        prev_end: Optional[int] = None
        for t0, t1, job_id in intervals:
            if prev_end is not None and t0 < prev_end:
                problems.append(
                    f"machine (shard={shard}, lane={lane}): job {job_id} "
                    f"slice [{t0}, {t1}) overlaps previous end {prev_end}"
                )
            prev_end = t1
    return problems
