"""``repro-trace`` -- summarize, filter, convert and validate traces.

Operates on trace files produced by ``repro-serve --trace`` or
``run_bench --trace`` (JSONL) and on the Chrome trace-event exports
this tool itself produces.  Input format is sniffed from the file
contents, so every subcommand accepts either format.

Subcommands::

    repro-trace summarize trace.jsonl
    repro-trace filter trace.jsonl --kind completion --shard 0 -o out.jsonl
    repro-trace convert trace.jsonl --to chrome -o trace.chrome.json
    repro-trace validate trace.jsonl        # exit 1 on violations
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.observability.export import (
    event_to_dict,
    from_chrome,
    read_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.observability.spans import (
    TERMINAL_KINDS,
    build_spans,
    machine_intervals,
    recompute_profit,
    recompute_profit_by_shard,
    submitted_ids,
    validate_trace,
)


def load_trace(path: str) -> list[tuple]:
    """Load a trace file, sniffing JSONL vs Chrome trace-event format.

    A Chrome export is one (typically multi-line, pretty-printed or
    not) JSON document with a ``traceEvents`` key; a JSONL trace is one
    JSON object *per line*.  Both start with ``{``, so sniffing the
    first byte is not enough: try the whole file as a single document
    first and fall back to line-by-line parsing.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        return read_jsonl(path)
    if isinstance(document, dict) and "traceEvents" in document:
        return from_chrome(document)
    # a one-line JSONL file parses as a single record
    return read_jsonl(path)


def summarize_trace(events: Sequence[tuple]) -> dict:
    """Aggregate one trace into a JSON-compatible summary dict."""
    kinds: dict[str, int] = {}
    shards: dict[str, int] = {}
    t_min: Optional[int] = None
    t_max: Optional[int] = None
    for ev in events:
        _seq, shard, t, kind, _job, _data = ev
        kinds[kind] = kinds.get(kind, 0) + 1
        key = "cluster" if shard is None else f"shard_{shard}"
        shards[key] = shards.get(key, 0) + 1
        if t_min is None or t < t_min:
            t_min = t
        if t_max is None or t > t_max:
            t_max = t
    spans = build_spans(events)
    terminals: dict[str, int] = {}
    for span in spans.values():
        if span.terminal is not None:
            terminals[span.terminal] = terminals.get(span.terminal, 0) + 1
    by_shard = recompute_profit_by_shard(events)
    return {
        "events": len(events),
        "jobs": len(spans),
        "submitted": len(submitted_ids(events)),
        "time_range": [t_min, t_max],
        "kinds": dict(sorted(kinds.items())),
        "by_shard": dict(sorted(shards.items())),
        "terminals": dict(sorted(terminals.items())),
        "profit": recompute_profit(events),
        "profit_by_shard": {
            ("cluster" if shard is None else f"shard_{shard}"): profit
            for shard, profit in sorted(
                by_shard.items(), key=lambda kv: (kv[0] is not None, kv[0])
            )
        },
        "machines": len(machine_intervals(events)),
    }


def _cmd_summarize(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    print(json.dumps(summarize_trace(events), indent=2))
    return 0


def _cmd_filter(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    kinds = set(args.kind) if args.kind else None
    jobs = set(args.job) if args.job else None
    shards = set(args.shard) if args.shard else None
    selected = [
        ev
        for ev in events
        if (kinds is None or ev[3] in kinds)
        and (jobs is None or ev[4] in jobs)
        and (shards is None or ev[1] in shards)
    ]
    if args.output:
        count = write_jsonl(selected, args.output)
        print(f"wrote {count} of {len(events)} events to {args.output}")
    else:
        for ev in selected:
            print(json.dumps(event_to_dict(ev)))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    if args.to == "chrome":
        count = write_chrome(events, args.output)
    else:
        count = write_jsonl(events, args.output)
    print(f"wrote {count} events to {args.output} ({args.to})")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    problems = validate_trace(events)
    spans = build_spans(events)
    closed = sum(
        1 for span in spans.values() if len(span.terminal_events) == 1
    )
    print(
        f"{args.trace}: {len(events)} events, {len(spans)} jobs, "
        f"{closed} closed spans"
    )
    if problems:
        for problem in problems:
            print(f"VIOLATION: {problem}", file=sys.stderr)
        print(f"{len(problems)} violation(s)", file=sys.stderr)
        return 1
    print("ok: all trace invariants hold")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Summarize, filter, convert and validate repro trace files "
            "(JSONL or Chrome trace-event)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize", help="print an aggregate summary of one trace"
    )
    p_sum.add_argument("trace", help="trace file (JSONL or Chrome)")
    p_sum.set_defaults(func=_cmd_summarize)

    p_filter = sub.add_parser(
        "filter", help="select events by kind / job / shard"
    )
    p_filter.add_argument("trace", help="trace file (JSONL or Chrome)")
    p_filter.add_argument(
        "--kind",
        action="append",
        choices=sorted(
            set(TERMINAL_KINDS)
            | {
                "arrival", "admission", "decision", "slice", "submit",
                "release", "route", "checkpoint", "recovery",
                "supervision", "migrate", "steal", "candidate-commit",
            }
        ),
        help="keep only this event kind (repeatable)",
    )
    p_filter.add_argument(
        "--job", action="append", type=int,
        help="keep only this job id (repeatable)",
    )
    p_filter.add_argument(
        "--shard", action="append", type=int,
        help="keep only this shard index (repeatable)",
    )
    p_filter.add_argument(
        "-o", "--output", help="write JSONL here instead of stdout"
    )
    p_filter.set_defaults(func=_cmd_filter)

    p_conv = sub.add_parser(
        "convert", help="convert between JSONL and Chrome trace-event"
    )
    p_conv.add_argument("trace", help="trace file (JSONL or Chrome)")
    p_conv.add_argument(
        "--to", choices=("chrome", "jsonl"), required=True,
        help="target format",
    )
    p_conv.add_argument("-o", "--output", required=True, help="output path")
    p_conv.set_defaults(func=_cmd_convert)

    p_val = sub.add_parser(
        "validate", help="check trace-completeness invariants (exit 1 on "
        "violations)"
    )
    p_val.add_argument("trace", help="trace file (JSONL or Chrome)")
    p_val.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-trace`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. ``repro-trace summarize ... | head``
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
