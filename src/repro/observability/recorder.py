"""Trace recorders: structured event capture for engine/service/cluster.

A *trace* is an append-only sequence of lightweight event tuples

    ``(seq, shard, t, kind, job_id, data)``

where ``seq`` is a recorder-global sequence number, ``shard`` tags the
cluster shard that produced the event (``None`` for single-service and
cluster-level events), ``t`` is *simulated* time, ``kind`` is one of
the :data:`EVENT_KINDS` strings, ``job_id`` names the job the event is
about (``None`` for engine-wide events like decisions), and ``data`` is
a small JSON-compatible dict of kind-specific payload (or ``None``, or
a lazily-rendered :class:`SliceData` -- read payloads through
:func:`event_data`, not ``event[5]``).

Two recorder implementations share the same duck-typed interface:

* :class:`TraceRecorder` -- records everything into an in-memory list;
* :class:`NullRecorder` -- a no-op whose ``enabled`` flag is ``False``.

The hot paths (the engine's event loop, the service submit path) hoist
``recorder.event`` into a local **only when** ``recorder is not None
and recorder.enabled``; with no recorder, or with the shared
:data:`NULL_RECORDER` attached, the per-event cost is a single local
``None`` check -- the "near-zero cost when disabled" contract the
``BENCH_observability.json`` gate pins at under 2%.

Recorders never mutate scheduler or engine state; they only read it.
That is what makes tracing-on runs bit-identical to tracing-off runs
(``tests/test_observability_equivalence.py``).

Exactly-once spans under recovery
---------------------------------
Cluster checkpoints note, per shard, how many shard-tagged events the
trace held at checkpoint time (:meth:`TraceRecorder.shard_event_count`).
When a crashed shard is restored from that checkpoint,
:meth:`TraceRecorder.truncate_shard` drops the shard's events recorded
*after* the checkpoint; the deterministic log-tail replay then
regenerates exactly those events once, so a recovered trace has no
duplicate and no orphaned spans (``tests/test_resilience_chaos.py``).
"""

from __future__ import annotations

from typing import Any, Optional

#: Every event kind a recorder may emit.  Terminal kinds (the ones that
#: close a job's lifecycle span) are listed in
#: :data:`repro.observability.spans.TERMINAL_KINDS`.
EVENT_KINDS: tuple[str, ...] = (
    "arrival",          # job released into the engine
    "admission",        # scheduler's computed n_i / x_i / v_i verdict
    "expiry",           # effective deadline passed unfinished
    "decision",         # one engine allocation decision point
    "slice",            # frozen allocation executed over [t, t1)
    "completion",       # job finished (data carries earned profit)
    "abandon",          # horizon reached with the job unfinished
    "submit",           # service-level submission outcome
    "release",          # queued job released into the engine
    "shed",             # service dropped the job before release
    "route",            # cluster routed the job to a shard
    "checkpoint",       # one shard checkpoint was persisted
    "recovery",         # a crashed shard was restored + replayed
    "supervision",      # the supervisor handled a shard failure
    "migrate",          # queued job moved between shards
    "cluster-shed",     # no healthy shard could admit the job
    "steal",            # running job stolen between shards (coordinator)
    "candidate-commit", # candidate trial committed to its best schedule
    "steal-resolve",    # pending steal transaction settled after a crash
    "steal-reconcile",  # restored shard reconciled against the journal
    "degradation",      # the gateway's overload ladder changed rung
)


class NullRecorder:
    """Recorder that drops everything (the disabled mode).

    ``enabled`` is ``False``, so instrumented hot paths skip their
    emit branch entirely; calling :meth:`event` anyway is a no-op.
    Use the module-level :data:`NULL_RECORDER` singleton.
    """

    __slots__ = ()

    #: hot paths read this once per session and skip all emits when False
    enabled = False

    def event(
        self,
        t: int,
        kind: str,
        job_id: Optional[int] = None,
        data: Optional[dict] = None,
    ) -> None:
        """Discard the event."""

    def for_shard(self, index: int) -> "NullRecorder":
        """A shard view of a null recorder is the null recorder."""
        return self

    def shard_event_count(self, index: int) -> int:
        """A null recorder holds no events."""
        return 0

    def truncate_shard(self, index: int, keep: int) -> int:
        """Nothing to truncate; returns 0."""
        return 0


#: Shared no-op recorder: attach it to measure the disabled-mode cost.
NULL_RECORDER = NullRecorder()


class SliceData:
    """Lazily-rendered payload of an engine ``"slice"`` event.

    A slice happens at every decision point and names every executing
    job, so rendering its entry list eagerly -- one interpreted tuple
    per (job, procs) pair per decision -- was the single largest cost
    of tracing the engine hot path.  The engine instead hands the
    recorder this thin wrapper around the decision's *live* assignment
    list; :meth:`render` materializes the JSON-compatible dict the
    first time anything reads the trace (span analysis, export).

    Deferred rendering is sound because the captured state is
    effectively immutable: the assignment list is rebuilt fresh at
    every decision point, node-pick lists are replaced (never mutated
    in place) by the pick memo, ``k`` sits in an immutable tuple and
    ``spec.job_id`` never changes.  Consumers must go through
    :func:`event_data` rather than reading ``event[5]`` raw.
    """

    __slots__ = ("t1", "_assignment", "_rendered")

    def __init__(self, t1: int, assignment: list) -> None:
        self.t1 = t1
        self._assignment = assignment
        self._rendered: Optional[dict] = None

    def render(self) -> dict:
        """Materialize (once) as ``{"t1": ..., "entries": [...]}``.

        Each entry is ``(job_id, k, n_nodes)``: the job, its allotted
        processors, and how many DAG nodes actually executed.
        """
        rendered = self._rendered
        if rendered is None:
            rendered = {
                "t1": self.t1,
                "entries": [
                    (job.spec.job_id, k, len(nodes))
                    for job, nodes, k, _dag in self._assignment
                ],
            }
            self._rendered = rendered
            self._assignment = ()
        return rendered

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SliceData(t1={self.t1})"


def event_data(event: tuple) -> Optional[dict]:
    """The ``data`` payload of one event tuple, rendered if deferred."""
    data = event[5]
    if type(data) is SliceData:
        return data.render()
    return data


class TraceRecorder:
    """In-memory structured trace of one run (engine, service or cluster).

    Events are appended as plain tuples (see the module docstring for
    the layout) -- the cheapest thing Python can append -- and exported
    or analyzed after the run through :mod:`repro.observability.export`
    and :mod:`repro.observability.spans`.

    The recorder is single-threaded by design (the whole simulation
    stack is); "lock-free" here means literally no locks, not atomics.
    """

    __slots__ = ("events", "_seq", "enabled")

    def __init__(self) -> None:
        #: recorded events, in append order
        self.events: list[tuple] = []
        self._seq = 0
        #: hot paths read this before each emit; the gateway's
        #: degradation ladder flips it live to shed tracing overhead
        #: under sustained overload
        self.enabled = True

    def __len__(self) -> int:
        """Number of recorded events."""
        return len(self.events)

    def event(
        self,
        t: int,
        kind: str,
        job_id: Optional[int] = None,
        data: Optional[dict] = None,
    ) -> None:
        """Append one event at simulated time ``t`` (shard ``None``)."""
        seq = self._seq
        self._seq = seq + 1
        self.events.append((seq, None, t, kind, job_id, data))

    def for_shard(self, index: int) -> "ShardRecorder":
        """A view that records into this trace tagged with shard ``index``.

        Shard views share the parent's event list and sequence counter,
        so a cluster trace stays globally ordered while every shard's
        events remain separable (for truncation and per-shard views).
        """
        return ShardRecorder(self, index)

    # -- recovery support ----------------------------------------------
    def shard_event_count(self, index: int) -> int:
        """How many events are tagged with shard ``index`` right now.

        Cluster checkpoints store this as the shard's *trace mark*.
        """
        return sum(1 for ev in self.events if ev[1] == index)

    def truncate_shard(self, index: int, keep: int) -> int:
        """Drop shard ``index``'s events beyond its first ``keep``.

        Called by shard recovery before the log-tail replay: the replay
        deterministically regenerates the dropped events exactly once.
        Events of other shards (and cluster-level events) are untouched.
        Returns the number of events removed.
        """
        kept: list[tuple] = []
        seen = 0
        removed = 0
        for ev in self.events:
            if ev[1] == index:
                seen += 1
                if seen > keep:
                    removed += 1
                    continue
            kept.append(ev)
        if removed:
            self.events[:] = kept
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceRecorder(events={len(self.events)})"


class ShardRecorder:
    """Shard-tagged view over a parent :class:`TraceRecorder`.

    Appends into the parent's event list using the parent's sequence
    counter, stamping every event with this view's shard index.
    """

    __slots__ = ("parent", "shard")

    def __init__(self, parent: TraceRecorder, shard: int) -> None:
        self.parent = parent
        self.shard = int(shard)

    @property
    def enabled(self) -> bool:
        """Views follow the parent, so a live pause silences shards too."""
        return self.parent.enabled

    def event(
        self,
        t: int,
        kind: str,
        job_id: Optional[int] = None,
        data: Optional[dict] = None,
    ) -> None:
        """Append one event tagged with this view's shard index."""
        parent = self.parent
        seq = parent._seq
        parent._seq = seq + 1
        parent.events.append((seq, self.shard, t, kind, job_id, data))

    def for_shard(self, index: int) -> "ShardRecorder":
        """Re-view the parent trace under a different shard tag."""
        return self.parent.for_shard(index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRecorder(shard={self.shard}, parent={self.parent!r})"


#: Per state-class cache of which admission fields exist, so the
#: per-arrival hot path never pays ``getattr`` miss (exception) cost:
#: ``{state_class: ((attr, key), ...) , has_rejected, has_delta_good}``.
_ADMISSION_FIELDS: dict[type, tuple] = {}


def _admission_fields(state: Any) -> tuple:
    cls = state.__class__
    cached = _ADMISSION_FIELDS.get(cls)
    if cached is None:
        numeric = tuple(
            (field, key)
            for field, key in (
                ("allotment", "n"), ("x", "x"), ("density", "v")
            )
            if hasattr(state, field)
        )
        cached = _ADMISSION_FIELDS[cls] = (
            numeric,
            hasattr(state, "rejected"),
            hasattr(state, "delta_good"),
        )
    return cached


def scheduler_admission(scheduler: Any, job_id: int) -> Optional[dict]:
    """Duck-typed admission info for one job, read off the scheduler.

    The paper's scheduler S computes, at arrival, the allotment ``n_i``,
    the virtual execution time ``x_i`` and the density ``v_i``; this
    helper extracts them (plus the admit/park/reject verdict) from any
    scheduler that exposes a per-job state dict:

    * :class:`~repro.core.sns.SNSScheduler` -- ``all_states`` with
      ``allotment`` / ``x`` / ``density`` / ``delta_good``; a job is
      *admitted* when it entered the started queue Q (``started_ids``);
    * :class:`~repro.core.profit_scheduler.GeneralProfitScheduler` --
      ``states`` with the same numeric fields plus a ``rejected`` flag
      and the ``assigned_relative_deadline``.

    Returns ``None`` for schedulers without per-job state (baselines),
    so their traces simply carry no admission payload.  Pure read-only:
    never mutates scheduler state.
    """
    for attr in ("all_states", "states"):
        states = getattr(scheduler, attr, None)
        if not isinstance(states, dict):
            continue
        state = states.get(job_id)
        if state is None:
            continue
        numeric, has_rejected, has_delta_good = _admission_fields(state)
        info: dict[str, Any] = {}
        for field, key in numeric:
            value = getattr(state, field)
            if value is not None:
                info[key] = value
        if has_rejected:
            rejected = state.rejected
            if rejected is not None:
                info["admitted"] = not rejected
        if has_delta_good:
            delta_good = state.delta_good
            if delta_good is not None:
                info["delta_good"] = bool(delta_good)
                started = getattr(scheduler, "started_ids", None)
                if started is not None:
                    info["admitted"] = job_id in started
        return info or None
    return None
