"""Trace exporters: JSONL and Chrome trace-event format.

Two on-disk formats, both JSON-tooling friendly:

* **JSONL** -- one event per line, keys ``seq`` / ``shard`` / ``t`` /
  ``kind`` / ``job`` / ``data``.  The canonical interchange format:
  :func:`read_jsonl` round-trips it back into the recorder's tuple
  layout, and every :mod:`repro.observability.spans` helper accepts
  the result directly.
* **Chrome trace-event** -- a JSON object loadable in
  ``chrome://tracing`` / Perfetto.  Execution slices render as ``"X"``
  (complete) events on per-shard process lanes, with one track per
  machine; point events render as ``"i"`` (instant) events.  Simulated
  time steps map to microseconds (``ts``), so the viewer's timeline is
  the simulated clock.  The full original event list rides along under
  ``otherData.repro``, which makes the conversion **lossless**:
  :func:`from_chrome` recovers the exact JSONL events, so
  ``repro-trace convert`` round-trips JSONL -> Chrome -> JSONL
  bit-identically.

Writes are crash-safe in the same way the telemetry registry's are:
rendered to a temp file, fsynced, then atomically renamed over the
target.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Optional

from repro.observability.recorder import event_data

#: Chrome trace-event export format version (under ``otherData.repro``).
CHROME_EXPORT_VERSION = 1


def event_to_dict(event: Any) -> dict[str, Any]:
    """One recorder tuple (or already-exported dict) as a JSONL record.

    Deferred slice payloads (``SliceData``) are rendered here, so the
    exported record is always plain JSON."""
    if isinstance(event, dict):
        return event
    seq, shard, t, kind, job_id, _ = event
    data = event_data(event)
    record: dict[str, Any] = {"seq": seq, "t": t, "kind": kind}
    if shard is not None:
        record["shard"] = shard
    if job_id is not None:
        record["job"] = job_id
    if data is not None:
        record["data"] = data
    return record


def event_from_dict(record: dict[str, Any]) -> tuple:
    """One JSONL record back into the recorder tuple layout."""
    return (
        record.get("seq", 0),
        record.get("shard"),
        record["t"],
        record["kind"],
        record.get("job"),
        record.get("data"),
    )


def _atomic_write(path: str, body: str) -> None:
    """Write ``body`` to ``path`` via fsynced temp file + atomic rename."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def to_jsonl(events: Iterable[Any]) -> str:
    """Render events as a JSONL string (one event per line)."""
    return "".join(
        json.dumps(event_to_dict(event)) + "\n" for event in events
    )


def write_jsonl(events: Iterable[Any], path: str) -> int:
    """Write events to a JSONL file crash-safely; returns the count."""
    records = [event_to_dict(event) for event in events]
    _atomic_write(path, "".join(json.dumps(r) + "\n" for r in records))
    return len(records)


def read_jsonl(path: str) -> list[tuple]:
    """Read a JSONL trace file back into recorder tuples."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def _chrome_pid(shard: Optional[int]) -> int:
    """Process lane for one shard (cluster-level events live on pid 0)."""
    return 0 if shard is None else int(shard) + 1


def to_chrome(events: Iterable[Any], label: str = "repro") -> dict[str, Any]:
    """Render events as a Chrome trace-event JSON object.

    Slices become ``"X"`` complete events, one per machine the entry
    occupies (lanes assigned cumulatively in entry order, matching
    :func:`repro.observability.spans.machine_intervals`); other events
    become ``"i"`` instants.  The original events are embedded verbatim
    under ``otherData.repro`` so :func:`from_chrome` is lossless.
    """
    records = [event_to_dict(event) for event in events]
    trace_events: list[dict[str, Any]] = []
    named_pids: set[int] = set()
    for record in records:
        shard = record.get("shard")
        pid = _chrome_pid(shard)
        if pid not in named_pids:
            named_pids.add(pid)
            scope = "cluster" if shard is None else f"shard {shard}"
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{label} {scope}"},
                }
            )
        kind = record["kind"]
        t = record["t"]
        if kind == "slice" and record.get("data"):
            data = record["data"]
            duration = data["t1"] - t
            offset = 0
            for entry in data.get("entries", ()):
                job_id, procs = int(entry[0]), int(entry[1])
                for lane in range(offset, offset + procs):
                    trace_events.append(
                        {
                            "name": f"job {job_id}",
                            "cat": "execution",
                            "ph": "X",
                            "ts": t,
                            "dur": duration,
                            "pid": pid,
                            "tid": lane,
                            "args": {"procs": procs, "nodes": int(entry[2])},
                        }
                    )
                offset += procs
            continue
        event_args: dict[str, Any] = {}
        if record.get("job") is not None:
            event_args["job"] = record["job"]
        if record.get("data") is not None:
            event_args.update(record["data"])
        name = kind if record.get("job") is None else (
            f"{kind} job {record['job']}"
        )
        trace_events.append(
            {
                "name": name,
                "cat": kind,
                "ph": "i",
                "s": "p",
                "ts": t,
                "pid": pid,
                "tid": 0,
                "args": event_args,
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "repro": {"version": CHROME_EXPORT_VERSION, "events": records}
        },
    }


def write_chrome(
    events: Iterable[Any], path: str, label: str = "repro"
) -> int:
    """Write a Chrome trace-event file crash-safely; returns the number
    of original events embedded."""
    document = to_chrome(events, label=label)
    _atomic_write(path, json.dumps(document) + "\n")
    return len(document["otherData"]["repro"]["events"])


def from_chrome(document: dict[str, Any]) -> list[tuple]:
    """Recover the original events from a Chrome trace-event export.

    Requires the ``otherData.repro`` payload :func:`to_chrome` embeds;
    a foreign Chrome trace (without it) raises ``ValueError``.
    """
    payload = document.get("otherData", {}).get("repro")
    if payload is None:
        raise ValueError(
            "not a repro-exported Chrome trace (missing otherData.repro)"
        )
    version = payload.get("version")
    if version != CHROME_EXPORT_VERSION:
        raise ValueError(f"unsupported Chrome export version {version!r}")
    return [event_from_dict(record) for record in payload["events"]]


def read_chrome(path: str) -> list[tuple]:
    """Read a repro-exported Chrome trace file back into event tuples."""
    with open(path, "r", encoding="utf-8") as fh:
        return from_chrome(json.load(fh))
