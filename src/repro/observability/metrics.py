"""Ring-buffered histograms for hot-path metrics.

:class:`RingHistogram` keeps a bounded window of the most recent
observations (decision latencies, queue depths, restart durations)
plus running aggregates over *all* observations -- count, total, min,
max -- so long runs get quantiles over a recent window and exact
lifetime totals without unbounded memory.

The whole simulation stack is single-threaded; "lock-free" here means
literally lock-free -- plain list writes, no synchronization, no
atomics -- so an ``observe`` costs one index, one store, and four
scalar updates.  Histograms extend the existing telemetry registry
(:meth:`repro.service.telemetry.MetricsRegistry.histogram`) but stay
out of its samples and checkpoints, keeping telemetry output and
snapshot formats bit-identical with or without observability.
"""

from __future__ import annotations

from typing import Any, Optional


class RingHistogram:
    """Fixed-capacity ring of observations with running aggregates."""

    __slots__ = (
        "name", "capacity", "count", "total", "min", "max", "_ring", "_pos"
    )

    def __init__(self, name: str, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("histogram capacity must be >= 1")
        self.name = name
        self.capacity = int(capacity)
        #: lifetime number of observations (>= len(window))
        self.count = 0
        #: lifetime sum of observations
        self.total = 0.0
        #: lifetime minimum (None until the first observation)
        self.min: Optional[float] = None
        #: lifetime maximum (None until the first observation)
        self.max: Optional[float] = None
        self._ring: list[float] = []
        # next overwrite slot once full == index of the oldest retained
        # observation (an explicit cursor, not count % capacity, so a
        # merge can normalize the ring without faking a lifetime count)
        self._pos = 0

    def observe(self, value: float) -> None:
        """Record one observation (overwrites the oldest when full)."""
        value = float(value)
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(value)
        else:
            ring[self._pos] = value
            self._pos += 1
            if self._pos == self.capacity:
                self._pos = 0
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge_from(self, other: "RingHistogram") -> None:
        """Fold another histogram into this one (``other`` unchanged).

        Lifetime aggregates (count, total, min, max) combine exactly.
        The window keeps the newest ``capacity`` observations treating
        ``other``'s window as more recent than this one's -- the
        convention :func:`repro.service.telemetry.merge_registries`
        relies on when rolling per-shard histograms into a cluster
        view, where cross-shard observation order is not defined
        anyway; windowed quantiles over the merged window are the
        cluster-level approximation.
        """
        if other.count == 0:
            return
        merged = self.window() + other.window()
        self._ring = merged[-self.capacity:]
        self._pos = 0
        self.count += other.count
        self.total += other.total
        if self.min is None or (other.min is not None and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None and other.max > self.max):
            self.max = other.max

    def window(self) -> list[float]:
        """Retained observations, oldest first."""
        if len(self._ring) < self.capacity:
            return list(self._ring)
        return self._ring[self._pos:] + self._ring[: self._pos]

    def quantile(self, q: float) -> Optional[float]:
        """Windowed quantile ``q`` in [0, 1] (None when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._ring:
            return None
        ordered = sorted(self._ring)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    @property
    def mean(self) -> float:
        """Lifetime mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, Any]:
        """Flat JSON-compatible summary: lifetime aggregates plus
        windowed p50/p90/p99."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def __len__(self) -> int:
        """Number of retained (windowed) observations."""
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RingHistogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:.6g})"
        )
