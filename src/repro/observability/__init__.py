"""Observability: structured tracing, hot-path metrics, and profiling.

The package instruments the event-driven engine, the scheduling
service, the sharded cluster and the resilience supervisor with:

* **tracing** (:mod:`~repro.observability.recorder`) -- structured
  events for every job lifecycle transition and engine decision point,
  behind a near-zero-cost no-op recorder when disabled;
* **span analysis** (:mod:`~repro.observability.spans`) -- lifecycle
  span reconstruction and trace-completeness invariants;
* **metrics** (:mod:`~repro.observability.metrics`) -- ring-buffered
  histograms extending the telemetry registry;
* **profiling** (:mod:`~repro.observability.profiler`) -- wall-clock
  timing of named engine hot-path sections;
* **exporters** (:mod:`~repro.observability.export`) -- JSONL and
  Chrome trace-event formats with lossless round-trips;
* **``repro-trace``** (:mod:`~repro.observability.cli`) -- a CLI to
  summarize, filter, convert and validate trace files.

See ``docs/OBSERVABILITY.md`` for the guarantees (bit-identity with
tracing on/off, exactly-once spans under shard recovery, overhead
gates) and usage examples.
"""

from repro.observability.export import (
    from_chrome,
    read_chrome,
    read_jsonl,
    to_chrome,
    to_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.observability.metrics import RingHistogram
from repro.observability.profiler import Profiler
from repro.observability.recorder import (
    EVENT_KINDS,
    NULL_RECORDER,
    NullRecorder,
    ShardRecorder,
    SliceData,
    TraceRecorder,
    event_data,
    scheduler_admission,
)
from repro.observability.spans import (
    SUBMIT_KINDS,
    TERMINAL_KINDS,
    JobSpan,
    build_spans,
    machine_intervals,
    recompute_profit,
    recompute_profit_by_shard,
    submitted_ids,
    validate_trace,
)

__all__ = [
    "EVENT_KINDS",
    "NULL_RECORDER",
    "NullRecorder",
    "ShardRecorder",
    "SliceData",
    "TraceRecorder",
    "event_data",
    "scheduler_admission",
    "RingHistogram",
    "Profiler",
    "SUBMIT_KINDS",
    "TERMINAL_KINDS",
    "JobSpan",
    "build_spans",
    "machine_intervals",
    "recompute_profit",
    "recompute_profit_by_shard",
    "submitted_ids",
    "validate_trace",
    "from_chrome",
    "read_chrome",
    "read_jsonl",
    "to_chrome",
    "to_jsonl",
    "write_chrome",
    "write_jsonl",
]
