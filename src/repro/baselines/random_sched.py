"""Random-priority scheduling: the sanity-check floor for experiments.

Each job receives a random priority at arrival (stable thereafter, so
the schedule isn't pure noise step-to-step); allocation is
work-conserving.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ListScheduler
from repro.sim.jobs import JobView


class RandomScheduler(ListScheduler):
    """Uniform random per-job priority, fixed at arrival."""

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self._keys: dict[int, float] = {}

    def on_arrival(self, job: JobView, t: int) -> None:
        super().on_arrival(job, t)
        self._keys[job.job_id] = float(self.rng.random())

    def on_completion(self, job: JobView, t: int) -> None:
        super().on_completion(job, t)
        self._keys.pop(job.job_id, None)

    def on_expiry(self, job: JobView, t: int) -> None:
        super().on_expiry(job, t)
        self._keys.pop(job.job_id, None)

    def priority(self, job: JobView, t: int) -> tuple[float, int]:
        return (self._keys.get(job.job_id, 0.5), job.job_id)

    def snapshot_state(self) -> dict:
        """Extend the base snapshot with priorities and RNG state."""
        data = super().snapshot_state()
        data["keys"] = [[job_id, key] for job_id, key in self._keys.items()]
        data["rng_state"] = self.rng.bit_generator.state
        return data

    def restore_state(self, data: dict, views) -> None:
        """Rebuild priorities and the RNG from a snapshot."""
        super().restore_state(data, views)
        self._keys = {int(job_id): float(key) for job_id, key in data["keys"]}
        self.rng.bit_generator.state = data["rng_state"]
