"""EDF with utilization-based admission control.

Ablation isolating *what kind* of admission matters: this scheduler
pairs EDF execution with a simple capacity admission test (no density
bands, no fixed allotments).  An arriving job is admitted iff the total
remaining committed work of admitted jobs plus its own fits in the
machine capacity up to every affected deadline — the single-machine
demand-bound test lifted to ``m`` processors (necessary, not
sufficient, for DAG jobs; the span side is checked per job).

Comparing ``S`` vs ``AdmissionEDF`` vs plain ``GlobalEDF`` (experiment
E13) separates the value of *any* admission control from the value of
the paper's density-band machinery.
"""

from __future__ import annotations

from repro.baselines.base import ListScheduler
from repro.sim.jobs import JobView


class AdmissionEDF(ListScheduler):
    """EDF execution + demand-bound admission at arrival."""

    # the admission test sums work_completed over admitted jobs inside
    # on_arrival: the array engine must not serve it from a deferred-
    # write arena
    reads_progress = True

    def __init__(self, utilization_cap: float = 1.0) -> None:
        super().__init__()
        if not 0 < utilization_cap <= 1.0:
            raise ValueError("utilization_cap must be in (0, 1]")
        self.utilization_cap = float(utilization_cap)
        self.admitted: set[int] = set()

    def _fits(self, job: JobView, t: int) -> bool:
        deadline = job.deadline
        if deadline is None:
            return True
        # per-job feasibility: window must cover span and W/m
        window = deadline - t
        if window * self.speed < max(job.span, job.work / self.m) - 1e-9:
            return False
        # demand bound against every admitted deadline >= this job's:
        # work due by time d must fit in m * (d - t) * speed
        capacity_scale = self.m * self.speed * self.utilization_cap
        admitted = [self.jobs[j] for j in self.admitted if j in self.jobs]
        deadlines = sorted(
            {deadline}
            | {v.deadline for v in admitted if v.deadline is not None}
        )
        for d in deadlines:
            demand = sum(
                v.work - v.work_completed
                for v in admitted
                if v.deadline is not None and v.deadline <= d
            )
            if deadline <= d:
                demand += job.work
            if demand > capacity_scale * (d - t) + 1e-9:
                return False
        return True

    def on_arrival(self, job: JobView, t: int) -> None:
        super().on_arrival(job, t)
        if self._fits(job, t):
            self.admitted.add(job.job_id)

    def on_completion(self, job: JobView, t: int) -> None:
        super().on_completion(job, t)
        self.admitted.discard(job.job_id)

    def on_expiry(self, job: JobView, t: int) -> None:
        super().on_expiry(job, t)
        self.admitted.discard(job.job_id)

    def priority(self, job: JobView, t: int) -> tuple[float, int]:
        deadline = job.deadline
        return (float("inf") if deadline is None else float(deadline), job.job_id)

    def eligible(self, job: JobView, t: int) -> bool:
        """Only admitted jobs receive processors."""
        return job.job_id in self.admitted

    def snapshot_state(self) -> dict:
        """Extend the base snapshot with the admitted set."""
        data = super().snapshot_state()
        data["admitted"] = sorted(self.admitted)
        return data

    def restore_state(self, data: dict, views) -> None:
        """Rebuild the live-job and admitted sets."""
        super().restore_state(data, views)
        self.admitted = {int(i) for i in data["admitted"]}
