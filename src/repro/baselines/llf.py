"""Global Least-Laxity-First for DAG jobs.

Laxity estimates how much slack a job has before its deadline becomes
unmeetable.  With DAG jobs and semi-non-clairvoyance the true remaining
time is unknowable, so we use the optimistic estimate
``remaining_work / (m * speed)`` (all processors, full parallelism);
jobs whose estimated laxity is most negative are most urgent.
"""

from __future__ import annotations

from repro.baselines.base import ListScheduler
from repro.sim.jobs import JobView


class LeastLaxityFirst(ListScheduler):
    """Smallest estimated laxity first; deadline-less jobs last."""

    # laxity reads work_completed at every decision: the array engine
    # must not serve it from a deferred-write arena
    reads_progress = True

    def priority(self, job: JobView, t: int) -> tuple[float, int]:
        deadline = job.deadline
        if deadline is None:
            return (float("inf"), job.job_id)
        remaining_work = job.work - job.work_completed
        estimate = remaining_work / (self.m * self.speed)
        laxity = (deadline - t) - estimate
        return (laxity, job.job_id)
