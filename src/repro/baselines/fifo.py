"""First-In-First-Out: process jobs in arrival order, work-conservingly."""

from __future__ import annotations

from repro.baselines.base import ListScheduler
from repro.sim.jobs import JobView


class FIFOScheduler(ListScheduler):
    """Earliest arrival first (ties by job id)."""

    def priority(self, job: JobView, t: int) -> tuple[int, int]:
        return (job.arrival, job.job_id)
