"""A fully non-clairvoyant scheduler via doubling estimates.

The paper's conclusion asks whether *fully* non-clairvoyant algorithms
(no knowledge of ``W_i`` or ``L_i`` at arrival, only ready-node counts
and observed progress) can match semi-non-clairvoyant performance.
This scheduler explores that question empirically:

* it never reads ``view.work`` or ``view.span``;
* it maintains a work estimate ``W_hat`` per job, doubling whenever the
  observed completed work reaches the estimate (the classic doubling
  trick), and a span estimate from the deadline;
* it then reuses the machinery of S — allotments, density bands,
  delta-goodness — against the *estimates*, recomputing a job's state
  (and its band entry) on every doubling.

This is *not* an algorithm from the paper; it is the open-question
probe the conclusion motivates, benchmarked alongside S in E9-style
comparisons.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.bands import DensityBands
from repro.core.theory import Constants
from repro.sim.jobs import JobView
from repro.sim.scheduler import SchedulerBase


class _NCState:
    __slots__ = ("view", "w_hat", "allotment", "x", "density", "started")

    def __init__(self, view: JobView) -> None:
        self.view = view
        self.w_hat = 1.0
        self.allotment = 1
        self.x = 1.0
        self.density = 0.0
        self.started = False


class DoublingNonClairvoyant(SchedulerBase):
    """Doubling-estimate variant of S, fully non-clairvoyant.

    Parameters
    ----------
    epsilon:
        Accuracy parameter for the reused constants.
    initial_estimate:
        Starting work guess ``W_hat`` for every job.
    """

    # the doubling pass reads work_completed at every decision: the
    # array engine must not serve it from a deferred-write arena
    reads_progress = True

    def __init__(
        self,
        epsilon: float = 1.0,
        constants: Optional[Constants] = None,
        initial_estimate: float = 4.0,
    ) -> None:
        self.constants = (
            constants if constants is not None else Constants.from_epsilon(epsilon)
        )
        if initial_estimate <= 0:
            raise ValueError("initial_estimate must be positive")
        self.initial_estimate = float(initial_estimate)
        self.states: dict[int, _NCState] = {}
        self.bands = DensityBands()
        #: how many times any estimate was doubled (diagnostics)
        self.doublings = 0

    # ------------------------------------------------------------------
    def _recompute(self, state: _NCState) -> None:
        """Derive allotment/x/density from the current estimate."""
        view = state.view
        rel = view.relative_deadline
        consts = self.constants
        w = state.w_hat
        # Non-clairvoyant span guess: the most parallel shape consistent
        # with the estimate (L ~ w / m); pessimists could use L = w.
        span_hat = max(1.0, w / self.m)
        if rel is None:
            rel = int(4 * consts.slack_requirement(w, span_hat, self.m)) + 1
        n = consts.allotment(w, span_hat, rel, self.m)
        x = consts.execution_bound(w, span_hat, n)
        state.allotment = n
        state.x = x
        state.density = view.profit / (x * n) if x * n > 0 else 0.0

    def _refresh_band(self, state: _NCState) -> None:
        if state.view.job_id in self.bands:
            self.bands.remove(state.view.job_id)
        if state.started and state.density > 0:
            self.bands.insert(
                state.view.job_id, state.density, state.allotment
            )

    # ------------------------------------------------------------------
    def on_arrival(self, job: JobView, t: int) -> None:
        """Admit with an optimistic estimate; bands gate admission."""
        state = _NCState(job)
        state.w_hat = self.initial_estimate
        self._recompute(state)
        self.states[job.job_id] = state
        if state.density > 0 and self.bands.can_insert(
            state.density,
            state.allotment,
            self.constants.c,
            self.constants.band_capacity(self.m),
        ):
            state.started = True
            self._refresh_band(state)

    def on_completion(self, job: JobView, t: int) -> None:
        """Drop state and band entry."""
        self._drop(job.job_id)

    def on_expiry(self, job: JobView, t: int) -> None:
        """Drop state and band entry."""
        self._drop(job.job_id)

    def _drop(self, job_id: int) -> None:
        self.states.pop(job_id, None)
        if job_id in self.bands:
            self.bands.remove(job_id)

    # ------------------------------------------------------------------
    def allocate(self, t: int) -> dict[int, int]:
        """Density order over started jobs, doubling estimates that the
        observed progress has outgrown."""
        # doubling pass: completed work is observable progress
        for state in self.states.values():
            completed = state.view.work_completed
            while completed >= state.w_hat - 1e-9:
                state.w_hat *= 2.0
                self.doublings += 1
                self._recompute(state)
                self._refresh_band(state)
        order = sorted(
            (s for s in self.states.values() if s.started),
            key=lambda s: (-s.density, s.view.job_id),
        )
        free = self.m
        alloc: dict[int, int] = {}
        for state in order:
            if free <= 0:
                break
            if state.allotment <= free:
                alloc[state.view.job_id] = state.allotment
                free -= state.allotment
        return alloc
