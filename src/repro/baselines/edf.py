"""Global Earliest-Deadline-First for DAG jobs.

The classic real-time baseline: all processors go to the jobs with the
earliest absolute deadlines, work-conservingly.  Optimal on one
processor without overload; well known to degrade badly under overload
(the domino effect), which is exactly the regime the paper's admission
control targets -- experiment E7 measures that contrast.
"""

from __future__ import annotations

from repro.baselines.base import ListScheduler
from repro.sim.jobs import JobView


class GlobalEDF(ListScheduler):
    """Earliest absolute deadline first; jobs without deadlines last."""

    def __init__(self, skip_hopeless: bool = False) -> None:
        super().__init__()
        self.skip_hopeless = bool(skip_hopeless)
        # the hopeless test reads work_completed at decision time
        self.reads_progress = self.skip_hopeless

    def priority(self, job: JobView, t: int) -> tuple[float, int]:
        deadline = job.deadline
        return (float("inf") if deadline is None else float(deadline), job.job_id)

    def eligible(self, job: JobView, t: int) -> bool:
        """Optionally skip jobs that cannot possibly finish in time
        (remaining work exceeds remaining capacity even at full span
        parallelism)."""
        if not self.skip_hopeless:
            return True
        deadline = job.deadline
        if deadline is None:
            return True
        remaining_time = deadline - t
        remaining_work = job.work - job.work_completed
        return remaining_work <= remaining_time * self.m * self.speed
