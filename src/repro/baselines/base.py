"""Work-conserving list scheduling: the shared baseline skeleton.

A :class:`ListScheduler` keeps the set of live jobs and, at every
decision point, hands out processors greedily in priority order, giving
each job as many processors as it has ready nodes (work-conserving --
in contrast to the paper's fixed-allotment, admission-controlled S).
Subclasses define only the priority key.
"""

from __future__ import annotations

from typing import Any

from repro.sim.jobs import JobView
from repro.sim.scheduler import SchedulerBase


class ListScheduler(SchedulerBase):
    """Greedy work-conserving scheduler ordered by :meth:`priority`."""

    def __init__(self) -> None:
        self.jobs: dict[int, JobView] = {}

    def on_arrival(self, job: JobView, t: int) -> None:
        """Track the job."""
        self.jobs[job.job_id] = job

    def on_completion(self, job: JobView, t: int) -> None:
        """Forget the job."""
        self.jobs.pop(job.job_id, None)

    def on_expiry(self, job: JobView, t: int) -> None:
        """Forget the job."""
        self.jobs.pop(job.job_id, None)

    def priority(self, job: JobView, t: int) -> Any:
        """Sort key; *smaller* sorts first (runs earlier).

        Ties should be broken deterministically -- include
        ``job.job_id`` in the key.
        """
        raise NotImplementedError

    def eligible(self, job: JobView, t: int) -> bool:
        """Hook: whether the job may receive processors now (default:
        any live job).  Overridden e.g. to skip hopeless jobs."""
        return True

    # ------------------------------------------------------------------
    # Checkpointing (see repro.service.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serialize the live-job set (tracking order preserved).

        Sufficient for every stateless-priority subclass; subclasses
        carrying extra mutable state must extend both this and
        :meth:`restore_state`.
        """
        return {"jobs": list(self.jobs)}

    def restore_state(self, data: dict, views) -> None:
        """Rebuild the live-job set from restored engine views."""
        self.jobs = {}
        for job_id in data["jobs"]:
            job_id = int(job_id)
            if job_id not in views:
                raise ValueError(f"no restored view for job {job_id}")
            self.jobs[job_id] = views[job_id]

    def allocate(self, t: int) -> dict[int, int]:
        """Greedily give each job ``min(free, num_ready)`` processors in
        priority order."""
        free = self.m
        alloc: dict[int, int] = {}
        if free <= 0 or not self.jobs:
            return alloc
        order = sorted(self.jobs.values(), key=lambda j: self.priority(j, t))
        for job in order:
            if free <= 0:
                break
            if not self.eligible(job, t):
                continue
            k = min(free, job.num_ready)
            if k > 0:
                alloc[job.job_id] = k
                free -= k
        return alloc
