"""Greedy highest-density-first, without admission control.

Orders jobs by the classical density ``p / W`` (profit per unit work)
and allocates work-conservingly.  This is the natural "obvious"
algorithm the paper improves on: it has no admission control, so a
stream of dense-but-doomed jobs starves everything (the known
:math:`\\Omega(\\delta)` lower bound for deterministic algorithms).
"""

from __future__ import annotations

from repro.baselines.base import ListScheduler
from repro.sim.jobs import JobView


class GreedyDensity(ListScheduler):
    """Highest ``p/W`` first (negated for ascending sort)."""

    def priority(self, job: JobView, t: int) -> tuple[float, int]:
        density = job.profit / job.work if job.work > 0 else 0.0
        return (-density, job.job_id)
