"""Ablations of the paper's scheduler S (experiment E9).

Each variant removes or alters exactly one design decision the paper's
remark in Section 3.1 motivates, so their deltas isolate what each
mechanism buys:

* :class:`SNSNoAdmission` -- drop conditions (1) and (2): every arrival
  goes straight to Q.  Tests whether admission control (not density
  ordering) is what protects against overload.
* :class:`WorkConservingSNS` -- keep admission, but hand leftover
  processors to admitted jobs beyond their fixed ``n_i`` (up to their
  ready-node counts).  The paper conjectures work-conserving variants
  in its conclusion.
* :class:`SNSWorkDensity` -- use the classical density ``p/W`` instead
  of the paper's ``p/(x_i n_i)`` for ordering and banding.
"""

from __future__ import annotations

from typing import Optional

from repro.core.sns import SNSJobState, SNSScheduler
from repro.core.theory import Constants
from repro.sim.jobs import JobView


class SNSNoAdmission(SNSScheduler):
    """S without admission control: all arrivals start immediately."""

    def on_arrival(self, job: JobView, t: int) -> None:
        state = self.compute_state(job)
        self.all_states[job.job_id] = state
        self._start(state)


class WorkConservingSNS(SNSScheduler):
    """S plus work-conservation: spare processors top up admitted jobs.

    The base allocation is identical to S (each admitted job gets its
    fixed ``n_i`` in density order); any processors left over are then
    dealt to admitted jobs, densest first, up to their current
    ready-node counts.  Admission, banding and promotion are untouched,
    so the analysis's accounting of *dedicated* processor-steps still
    underlies the schedule.
    """

    def allocate(self, t: int) -> dict[int, int]:
        # copy: the base result may be the scheduler's allocation memo
        alloc = dict(super().allocate(t))
        free = self.m - sum(alloc.values())
        if free <= 0:
            return alloc
        for state in self.queue_started.by_density_desc():
            if free <= 0:
                break
            current = alloc.get(state.job_id, 0)
            if current == 0:
                continue  # S chose not to run it (allotment didn't fit)
            headroom = state.view.num_ready - current
            if headroom > 0:
                extra = min(free, headroom)
                alloc[state.job_id] = current + extra
                free -= extra
        return alloc


class EagerPromotionSNS(SNSScheduler):
    """S that also promotes parked jobs at *arrivals*.

    The paper only promotes from P when a job completes; promoting on
    every event is the natural "why not?" variant.  The analysis only
    needs completion-time promotion (Lemma 7/8 argue about completion
    events), so this ablation tests whether the restriction costs
    anything in practice.
    """

    def on_arrival(self, job, t: int) -> None:
        super().on_arrival(job, t)
        self._promote(t)


class SNSWorkDensity(SNSScheduler):
    """S with the classical ``p/W`` density.

    Everything else (allotment, x, admission structure) is unchanged;
    only the density that orders queues and defines bands differs.
    The paper's Lemma 3 connects the two definitions within the factor
    ``a``, so large empirical gaps indicate workloads where per-
    processor-step accounting matters.
    """

    def __init__(
        self, epsilon: float = 1.0, constants: Optional[Constants] = None
    ) -> None:
        super().__init__(epsilon=epsilon, constants=constants)

    def compute_state(self, job: JobView) -> SNSJobState:
        state = super().compute_state(job)
        work_density = job.profit / job.work if job.work > 0 else 0.0
        return SNSJobState(
            view=state.view,
            allotment=state.allotment,
            x=state.x,
            density=work_density,
            delta_good=state.delta_good,
            allotment_real=state.allotment_real,
        )
