"""Baseline schedulers and ablations of the paper's algorithm."""

from repro.baselines.base import ListScheduler
from repro.baselines.edf import GlobalEDF
from repro.baselines.llf import LeastLaxityFirst
from repro.baselines.greedy_density import GreedyDensity
from repro.baselines.fifo import FIFOScheduler
from repro.baselines.random_sched import RandomScheduler
from repro.baselines.ablations import (
    EagerPromotionSNS,
    SNSNoAdmission,
    SNSWorkDensity,
    WorkConservingSNS,
)
from repro.baselines.federated import FederatedScheduler
from repro.baselines.nonclairvoyant import DoublingNonClairvoyant
from repro.baselines.admission_edf import AdmissionEDF

__all__ = [
    "ListScheduler",
    "GlobalEDF",
    "LeastLaxityFirst",
    "GreedyDensity",
    "FIFOScheduler",
    "RandomScheduler",
    "EagerPromotionSNS",
    "SNSNoAdmission",
    "SNSWorkDensity",
    "WorkConservingSNS",
    "FederatedScheduler",
    "DoublingNonClairvoyant",
    "AdmissionEDF",
]
