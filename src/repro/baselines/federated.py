"""Federated scheduling, adapted online (Li et al., ECRTS'14 — paper
refs [18, 26]).

Federated scheduling is the real-time community's approach the paper's
allotment rule descends from: give each parallel job a *dedicated* set
of cores sized so it meets its deadline in isolation,
``n_i = ceil((W_i - L_i)/(D_i - L_i))`` — exactly the paper's ``n_i``
with ``delta = 0``.  Cores are reserved at admission and held until the
job finishes or expires; a job that cannot reserve enough cores at
arrival is declined (classic federated systems would reject the task
set; online we drop the job).

Differences from the paper's S, which the E7/E9 experiments probe:
no density bands (first-come first-reserved), no parking/promotion,
and zero slack in the allotment (``delta = 0`` leaves no room for the
freshness argument the paper's analysis needs).
"""

from __future__ import annotations

import math

from repro.sim.jobs import JobView
from repro.sim.scheduler import SchedulerBase


class FederatedScheduler(SchedulerBase):
    """Online federated scheduling with dedicated core reservations.

    Parameters
    ----------
    reserve_sequential:
        Cores reserved for a sequential job (``W == L``); federated
        systems run those on shared cores, which we approximate with a
        single dedicated core.
    """

    def __init__(self, reserve_sequential: int = 1) -> None:
        self.reserve_sequential = int(reserve_sequential)
        self.reserved: dict[int, int] = {}  # job_id -> cores held
        self.declined: set[int] = set()

    @property
    def cores_in_use(self) -> int:
        """Currently reserved cores."""
        return sum(self.reserved.values())

    def allotment(self, job: JobView) -> int:
        """Federated core count ``ceil((W-L)/(D-L))`` (speed-scaled)."""
        rel = job.relative_deadline
        if rel is None:
            # no deadline: run greedily on one core
            return self.reserve_sequential
        work = job.work / self.speed
        span = job.span / self.speed
        if work <= span + 1e-12:
            return self.reserve_sequential
        denom = rel - span
        if denom <= 0:
            return self.m + 1  # infeasible: decline below
        return max(1, math.ceil((work - span) / denom - 1e-12))

    def on_arrival(self, job: JobView, t: int) -> None:
        """Reserve cores if available; otherwise decline the job."""
        need = self.allotment(job)
        if need <= self.m - self.cores_in_use:
            self.reserved[job.job_id] = need
        else:
            self.declined.add(job.job_id)

    def on_completion(self, job: JobView, t: int) -> None:
        """Release the job's cores."""
        self.reserved.pop(job.job_id, None)
        self.declined.discard(job.job_id)

    def on_expiry(self, job: JobView, t: int) -> None:
        """Release the job's cores."""
        self.reserved.pop(job.job_id, None)
        self.declined.discard(job.job_id)

    def allocate(self, t: int) -> dict[int, int]:
        """Every admitted job always runs on its reserved cores."""
        return dict(self.reserved)
