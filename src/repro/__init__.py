"""repro: online scheduling of parallelizable DAG jobs for throughput.

A production-quality reproduction of

    Kunal Agrawal, Jing Li, Kefu Lu, Benjamin Moseley.
    "Scheduling Parallelizable Jobs Online to Maximize Throughput."
    SPAA 2017.

Quickstart
----------
>>> from repro import (
...     SNSScheduler, Simulator, WorkloadConfig, generate_workload, summarize,
... )
>>> specs = generate_workload(WorkloadConfig(n_jobs=50, m=8, seed=1))
>>> result = Simulator(m=8, scheduler=SNSScheduler(epsilon=1.0)).run(specs)
>>> summary = summarize(result)

Package map
-----------
* :mod:`repro.dag` -- DAG job substrate (structures, builders, runtime).
* :mod:`repro.sim` -- discrete-time m-processor simulation engine.
* :mod:`repro.profit` -- non-increasing profit functions (Section 5).
* :mod:`repro.core` -- the paper's schedulers, constants, invariants.
* :mod:`repro.baselines` -- EDF/LLF/greedy/FIFO/random and S-ablations.
* :mod:`repro.workloads` -- arrivals, DAG families, deadlines, profits.
* :mod:`repro.analysis` -- metrics, OPT bounds, verification, tables.
* :mod:`repro.experiments` -- runners regenerating every experiment.
"""

from repro.core import (
    Constants,
    GeneralProfitScheduler,
    InvariantMonitor,
    InvariantReport,
    SNSScheduler,
)
from repro.dag import DAGJob, DAGStructure
from repro.analysis import (
    compare_schedulers,
    opt_bound,
    summarize,
)
from repro.sim import (
    JobSpec,
    JobView,
    SchedulerBase,
    SimulationResult,
    Simulator,
)
from repro.workloads import WorkloadConfig, generate_workload
from repro.errors import (
    AllocationError,
    ReproError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "Constants",
    "GeneralProfitScheduler",
    "InvariantMonitor",
    "InvariantReport",
    "SNSScheduler",
    "DAGJob",
    "DAGStructure",
    "compare_schedulers",
    "opt_bound",
    "summarize",
    "JobSpec",
    "JobView",
    "SchedulerBase",
    "SimulationResult",
    "Simulator",
    "WorkloadConfig",
    "generate_workload",
    "AllocationError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "WorkloadError",
    "__version__",
]
