"""Samplers of DAG structures, by named family.

A *family* is a callable ``(rng) -> DAGStructure``.  The registry covers
the shapes the paper's motivation names (structured fork-join parallel
programs) plus stress shapes (pure chains, pure blocks, random DAGs).
Node works are integers by default so the engine's discrete-step
semantics are exact (see :mod:`repro.sim.engine`).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.dag import builders
from repro.dag.graph import DAGStructure
from repro.errors import WorkloadError

DAGFamily = Callable[[np.random.Generator], DAGStructure]


def _int_works(structure: DAGStructure, name: str) -> DAGStructure:
    """Round node works up to integers (keeps discrete semantics exact)."""
    works = np.ceil(structure.work).astype(np.float64)
    return DAGStructure(works, list(structure.edges()), name=name)


def chain_family(min_len: int = 4, max_len: int = 32) -> DAGFamily:
    """Sequential chains with uniform random length."""

    def sample(rng: np.random.Generator) -> DAGStructure:
        length = int(rng.integers(min_len, max_len + 1))
        return builders.chain(length, name="chain")

    return sample


def block_family(min_width: int = 4, max_width: int = 64) -> DAGFamily:
    """Embarrassingly parallel blocks with uniform random width."""

    def sample(rng: np.random.Generator) -> DAGStructure:
        width = int(rng.integers(min_width, max_width + 1))
        return builders.block(width, name="block")

    return sample


def fork_join_family(
    min_width: int = 2,
    max_width: int = 32,
    min_node_work: int = 1,
    max_node_work: int = 1,
) -> DAGFamily:
    """Single-level fork-join graphs.

    Use coarse node works (e.g. 8-32) in speed-augmentation experiments:
    a node occupies ``ceil(w/s)`` whole steps, so unit-work nodes cannot
    benefit from fractional speed.
    """

    def sample(rng: np.random.Generator) -> DAGStructure:
        width = int(rng.integers(min_width, max_width + 1))
        work = float(rng.integers(min_node_work, max_node_work + 1))
        return builders.fork_join(
            width, node_work=work, fork_work=work, join_work=work, name="fork_join"
        )

    return sample


def layered_family(
    min_layers: int = 2,
    max_layers: int = 8,
    min_width: int = 2,
    max_width: int = 8,
    edge_prob: float = 0.5,
) -> DAGFamily:
    """Random layered DAGs (integer works)."""

    def sample(rng: np.random.Generator) -> DAGStructure:
        layers = int(rng.integers(min_layers, max_layers + 1))
        width = int(rng.integers(min_width, max_width + 1))
        dag = builders.layered_random(
            layers, width, rng, edge_prob=edge_prob, work_low=1.0, work_high=4.0
        )
        return _int_works(dag, "layered")

    return sample


def series_parallel_family(min_nodes: int = 8, max_nodes: int = 64) -> DAGFamily:
    """Random series-parallel DAGs (integer works)."""

    def sample(rng: np.random.Generator) -> DAGStructure:
        target = int(rng.integers(min_nodes, max_nodes + 1))
        dag = builders.series_parallel_random(
            target, rng, work_low=1.0, work_high=4.0
        )
        return _int_works(dag, "series_parallel")

    return sample


def recursive_fork_join_family(min_depth: int = 1, max_depth: int = 4) -> DAGFamily:
    """Cilk-style divide-and-conquer DAGs."""

    def sample(rng: np.random.Generator) -> DAGStructure:
        depth = int(rng.integers(min_depth, max_depth + 1))
        return builders.recursive_fork_join(depth, branching=2, name="recursive_fj")

    return sample


def wavefront_family(min_side: int = 3, max_side: int = 8) -> DAGFamily:
    """Square-ish wavefront (grid) DAGs — the HPC stencil pattern."""

    def sample(rng: np.random.Generator) -> DAGStructure:
        rows = int(rng.integers(min_side, max_side + 1))
        cols = int(rng.integers(min_side, max_side + 1))
        return builders.wavefront(rows, cols, name="wavefront")

    return sample


def reduction_family(min_log: int = 2, max_log: int = 5) -> DAGFamily:
    """Binary reduction trees with 2^k leaves."""

    def sample(rng: np.random.Generator) -> DAGStructure:
        k = int(rng.integers(min_log, max_log + 1))
        return builders.reduction_tree(2 ** k, name="reduction")

    return sample


def pipeline_family(
    min_stages: int = 2,
    max_stages: int = 6,
    min_width: int = 2,
    max_width: int = 8,
) -> DAGFamily:
    """Chained fork-join supersteps (bulk-synchronous pipelines)."""

    def sample(rng: np.random.Generator) -> DAGStructure:
        stages = int(rng.integers(min_stages, max_stages + 1))
        width = int(rng.integers(min_width, max_width + 1))
        return builders.pipeline(stages, width, name="pipeline")

    return sample


def gnp_family(
    min_nodes: int = 8, max_nodes: int = 48, edge_prob: float = 0.15
) -> DAGFamily:
    """Erdos-Renyi random DAGs (integer works)."""

    def sample(rng: np.random.Generator) -> DAGStructure:
        n = int(rng.integers(min_nodes, max_nodes + 1))
        dag = builders.random_dag_gnp(
            n, edge_prob, rng, work_low=1.0, work_high=4.0
        )
        return _int_works(dag, "gnp")

    return sample


def mixture(
    families: Sequence[DAGFamily], weights: Sequence[float] | None = None
) -> DAGFamily:
    """Sample from several families with given weights."""
    if not families:
        raise WorkloadError("mixture needs at least one family")
    if weights is None:
        probs = np.full(len(families), 1.0 / len(families))
    else:
        probs = np.asarray(weights, dtype=np.float64)
        if probs.size != len(families) or np.any(probs < 0) or probs.sum() <= 0:
            raise WorkloadError("weights must be non-negative and sum positive")
        probs = probs / probs.sum()

    def sample(rng: np.random.Generator) -> DAGStructure:
        idx = int(rng.choice(len(families), p=probs))
        return families[idx](rng)

    return sample


#: Named registry for experiment configs.
FAMILIES: dict[str, Callable[[], DAGFamily]] = {
    "chain": chain_family,
    "block": block_family,
    "fork_join": fork_join_family,
    "layered": layered_family,
    "series_parallel": series_parallel_family,
    "recursive_fork_join": recursive_fork_join_family,
    "gnp": gnp_family,
    "wavefront": wavefront_family,
    "reduction": reduction_family,
    "pipeline": pipeline_family,
}


def make_family(name: str, **kwargs) -> DAGFamily:
    """Instantiate a registered family by name."""
    if name == "mixed":
        return mixture([factory() for factory in FAMILIES.values()])
    try:
        factory = FAMILIES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown DAG family {name!r}; known: {sorted(FAMILIES)} + ['mixed']"
        ) from None
    return factory(**kwargs)
