"""Workload generation: arrivals, DAG families, deadlines, profits."""

from repro.workloads.arrivals import (
    batch_arrivals,
    bursty_arrivals,
    diurnal_arrivals,
    mmpp_arrivals,
    periodic_arrivals,
    poisson_arrivals,
    session_arrivals,
    spike_arrivals,
)
from repro.workloads.dag_families import DAGFamily, FAMILIES, make_family, mixture
from repro.workloads.deadlines import (
    meets_assumption,
    proportional_deadline,
    sequential_bound,
    slack_deadline,
    tight_deadline,
)
from repro.workloads.profits import (
    PROFIT_FN_SAMPLERS,
    PROFIT_SAMPLERS,
    make_profit_fn_sampler,
    make_profit_sampler,
)
from repro.workloads.adversarial import (
    admission_trap,
    edf_domino,
    fig1_jobs,
    fig2_jobs,
    overload_stream,
)
from repro.workloads.periodic import (
    PeriodicTask,
    harmonic_taskset,
    taskset_utilization,
    unroll_periodic,
)
from repro.workloads.serialize import (
    load_workload,
    save_workload,
    spec_from_dict,
    spec_to_dict,
    workload_from_json,
    workload_to_json,
)
from repro.workloads.suite import (
    WorkloadConfig,
    generate_workload,
    workload_capacity_ratio,
)

__all__ = [
    "batch_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "mmpp_arrivals",
    "periodic_arrivals",
    "poisson_arrivals",
    "session_arrivals",
    "spike_arrivals",
    "DAGFamily",
    "FAMILIES",
    "make_family",
    "mixture",
    "meets_assumption",
    "proportional_deadline",
    "sequential_bound",
    "slack_deadline",
    "tight_deadline",
    "PROFIT_FN_SAMPLERS",
    "PROFIT_SAMPLERS",
    "make_profit_fn_sampler",
    "make_profit_sampler",
    "admission_trap",
    "edf_domino",
    "fig1_jobs",
    "fig2_jobs",
    "overload_stream",
    "WorkloadConfig",
    "generate_workload",
    "workload_capacity_ratio",
    "PeriodicTask",
    "harmonic_taskset",
    "taskset_utilization",
    "unroll_periodic",
    "load_workload",
    "save_workload",
    "spec_from_dict",
    "spec_to_dict",
    "workload_from_json",
    "workload_to_json",
]
