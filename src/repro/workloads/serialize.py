"""Workload serialization: JobSpec lists <-> JSON.

Lets experiments persist exact workload artifacts (structures,
arrivals, deadlines, profits, profit functions) for replay across
machines and versions.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.dag.serialize import structure_from_dict, structure_to_dict
from repro.profit.serialize import profit_fn_from_dict, profit_fn_to_dict
from repro.sim.jobs import JobSpec

FORMAT_VERSION = 1


def spec_to_dict(spec: JobSpec) -> dict[str, Any]:
    """Serialize one job spec."""
    data: dict[str, Any] = {
        "job_id": spec.job_id,
        "structure": structure_to_dict(spec.structure),
        "arrival": spec.arrival,
    }
    if spec.profit_fn is not None:
        data["profit_fn"] = profit_fn_to_dict(spec.profit_fn)
    else:
        data["deadline"] = spec.deadline
        data["profit"] = spec.profit
    return data


def spec_from_dict(data: dict[str, Any]) -> JobSpec:
    """Rebuild one job spec."""
    structure = structure_from_dict(data["structure"])
    if "profit_fn" in data:
        return JobSpec(
            data["job_id"],
            structure,
            arrival=data["arrival"],
            profit_fn=profit_fn_from_dict(data["profit_fn"]),
        )
    return JobSpec(
        data["job_id"],
        structure,
        arrival=data["arrival"],
        deadline=data["deadline"],
        profit=data.get("profit", 1.0),
    )


def workload_to_json(specs: Sequence[JobSpec], indent: int | None = None) -> str:
    """Serialize a workload to a JSON string."""
    return json.dumps(
        {"version": FORMAT_VERSION, "jobs": [spec_to_dict(sp) for sp in specs]},
        indent=indent,
    )


def workload_from_json(text: str) -> list[JobSpec]:
    """Rebuild a workload from :func:`workload_to_json` output."""
    data = json.loads(text)
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported workload format version {version}")
    return [spec_from_dict(job) for job in data["jobs"]]


def save_workload(specs: Sequence[JobSpec], path: str) -> None:
    """Write a workload JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(workload_to_json(specs, indent=2))


def load_workload(path: str) -> list[JobSpec]:
    """Read a workload JSON file."""
    with open(path, encoding="utf-8") as fh:
        return workload_from_json(fh.read())
