"""Deadline assignment policies.

Theorem 2 assumes ``D_i >= (1+epsilon) * ((W_i - L_i)/m + L_i)``; the
experiments need workloads on both sides of that line:

* :func:`slack_deadline` -- deadlines that satisfy the assumption by a
  controllable (possibly random) factor;
* :func:`tight_deadline` -- deadlines proportional to the *clairvoyant*
  lower bound ``max(L, W/m)``, which can violate the assumption (the
  regime of Theorem 1 / Corollary 1);
* :func:`proportional_deadline` -- classic "deadline = factor * W/m"
  soft real-time style.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dag.graph import DAGStructure
from repro.errors import WorkloadError


def sequential_bound(structure: DAGStructure, m: int) -> float:
    """``(W - L)/m + L`` for the structure on ``m`` processors."""
    return (structure.total_work - structure.span) / m + structure.span


def slack_deadline(
    structure: DAGStructure,
    m: int,
    epsilon: float,
    rng: np.random.Generator | None = None,
    slack_low: float = 1.0,
    slack_high: float = 1.0,
) -> int:
    """Relative deadline ``ceil(slack * (1+epsilon) * ((W-L)/m + L))``.

    With the default ``slack_low == slack_high == 1`` the assumption is
    met exactly at its boundary; random slack in ``[low, high]`` spreads
    deadlines while keeping the assumption satisfied (requires
    ``slack_low >= 1``).
    """
    if slack_low < 1.0:
        raise WorkloadError("slack_low < 1 would violate Theorem 2's assumption")
    if slack_high < slack_low:
        raise WorkloadError("slack_high must be >= slack_low")
    slack = (
        slack_low
        if rng is None or slack_high == slack_low
        else float(rng.uniform(slack_low, slack_high))
    )
    bound = sequential_bound(structure, m)
    return max(1, math.ceil(slack * (1.0 + epsilon) * bound))


def tight_deadline(
    structure: DAGStructure,
    m: int,
    factor: float = 1.0,
    rng: np.random.Generator | None = None,
    jitter: float = 0.0,
) -> int:
    """Relative deadline ``ceil(factor * max(L, W/m))`` (+ jitter).

    ``factor = 1`` is the absolute feasibility limit for *any*
    scheduler; values below ``((W-L)/m + L) / max(L, W/m)`` violate
    Theorem 2's assumption -- the Corollary 1 regime.
    """
    if factor <= 0:
        raise WorkloadError("factor must be positive")
    lower = max(structure.span, structure.total_work / m)
    value = factor * lower
    if jitter > 0 and rng is not None:
        value *= float(rng.uniform(1.0, 1.0 + jitter))
    return max(1, math.ceil(value))


def proportional_deadline(
    structure: DAGStructure,
    m: int,
    factor: float = 2.0,
) -> int:
    """Relative deadline ``ceil(factor * W/m)`` -- utilization-style."""
    if factor <= 0:
        raise WorkloadError("factor must be positive")
    return max(1, math.ceil(factor * structure.total_work / m))


def meets_assumption(
    structure: DAGStructure, m: int, epsilon: float, relative_deadline: int
) -> bool:
    """Whether the deadline satisfies Theorem 2's slack assumption."""
    return relative_deadline >= (1.0 + epsilon) * sequential_bound(structure, m) - 1e-9
