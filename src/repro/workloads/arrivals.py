"""Arrival-time processes.

All generators return sorted integer arrival times (the engine's time is
discrete) and take an explicit :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import WorkloadError


def poisson_arrivals(
    n: int, rate: float, rng: np.random.Generator, start: int = 0
) -> np.ndarray:
    """``n`` arrivals with exponential(1/rate) gaps, rounded to steps.

    ``rate`` is jobs per time step; the workload suite derives it from
    the target load.
    """
    if n < 0:
        raise WorkloadError("n must be non-negative")
    if rate <= 0:
        raise WorkloadError("rate must be positive")
    gaps = rng.exponential(1.0 / rate, size=n)
    times = start + np.floor(np.cumsum(gaps)).astype(np.int64)
    return times


def periodic_arrivals(n: int, period: int, start: int = 0) -> np.ndarray:
    """``n`` arrivals exactly ``period`` steps apart."""
    if period < 1:
        raise WorkloadError("period must be >= 1")
    return start + period * np.arange(n, dtype=np.int64)


def bursty_arrivals(
    n: int,
    burst_size: int,
    burst_gap: int,
    rng: np.random.Generator,
    jitter: int = 0,
    start: int = 0,
) -> np.ndarray:
    """Bursts of ``burst_size`` simultaneous jobs every ``burst_gap``
    steps, with optional uniform jitter inside each burst."""
    if burst_size < 1 or burst_gap < 1:
        raise WorkloadError("burst_size and burst_gap must be >= 1")
    times = np.empty(n, dtype=np.int64)
    for i in range(n):
        burst = i // burst_size
        base = start + burst * burst_gap
        offset = int(rng.integers(0, jitter + 1)) if jitter > 0 else 0
        times[i] = base + offset
    return np.sort(times)


def batch_arrivals(n: int, time: int = 0) -> np.ndarray:
    """All ``n`` jobs released simultaneously (offline-style instance)."""
    return np.full(n, time, dtype=np.int64)


def mmpp_arrivals(
    n: int,
    slow_rate: float,
    fast_rate: float,
    switch_prob: float,
    rng: np.random.Generator,
    start: int = 0,
) -> np.ndarray:
    """Two-state Markov-modulated Poisson arrivals.

    The process alternates between a slow and a fast Poisson regime;
    after each arrival the regime flips with probability
    ``switch_prob``.  Produces the bursty-but-correlated arrival
    patterns (busy periods, lulls) that stress admission control
    differently from memoryless Poisson arrivals.
    """
    if n < 0:
        raise WorkloadError("n must be non-negative")
    if slow_rate <= 0 or fast_rate <= 0:
        raise WorkloadError("rates must be positive")
    if not 0 <= switch_prob <= 1:
        raise WorkloadError("switch_prob must be in [0, 1]")
    rates = (slow_rate, fast_rate)
    state = 0
    t = float(start)
    times = np.empty(n, dtype=np.int64)
    for i in range(n):
        t += rng.exponential(1.0 / rates[state])
        times[i] = int(t)
        if rng.random() < switch_prob:
            state = 1 - state
    return times


def diurnal_arrivals(
    n: int,
    base_rate: float,
    rng: np.random.Generator,
    *,
    amplitude: float = 0.5,
    period: int = 1000,
    phase: float = 0.0,
    start: int = 0,
) -> np.ndarray:
    """``n`` arrivals from a sinusoidal-rate Poisson process (thinning).

    The instantaneous rate is ``base_rate * (1 + amplitude *
    sin(2*pi*(t + phase)/period))`` -- the day/night traffic shape an
    open-loop gateway has to ride.  Candidates are drawn from a
    homogeneous Poisson process at the peak rate and accepted with
    probability ``rate(t)/peak`` (Lewis-Shedler thinning), which is
    exact for any bounded rate function.  The long-run mean rate is
    ``base_rate`` (the sinusoid integrates out over whole periods).
    """
    if n < 0:
        raise WorkloadError("n must be non-negative")
    if base_rate <= 0:
        raise WorkloadError("base_rate must be positive")
    if not 0.0 <= amplitude <= 1.0:
        raise WorkloadError("amplitude must be in [0, 1]")
    if period < 1:
        raise WorkloadError("period must be >= 1")
    peak = base_rate * (1.0 + amplitude)
    omega = 2.0 * math.pi / period
    t = float(start)
    times = np.empty(n, dtype=np.int64)
    filled = 0
    while filled < n:
        t += rng.exponential(1.0 / peak)
        rate_t = base_rate * (1.0 + amplitude * math.sin(omega * (t + phase)))
        if rng.random() * peak <= rate_t:
            times[filled] = int(t)
            filled += 1
    return times


def session_arrivals(
    n: int,
    session_rate: float,
    rng: np.random.Generator,
    *,
    alpha: float = 1.5,
    within_rate: float = 1.0,
    max_session_jobs: int = 1000,
    start: int = 0,
) -> np.ndarray:
    """``n`` arrivals from heavy-tailed user sessions.

    Sessions open as a Poisson process at ``session_rate`` sessions per
    step; each session issues a *train* of jobs -- a burst of
    ``ceil(Pareto(alpha))`` jobs (capped at ``max_session_jobs``) with
    exponential(1/within_rate) gaps between consecutive jobs of the same
    session.  With ``alpha`` in (1, 2] the session-length distribution
    has finite mean ``alpha/(alpha-1)`` but infinite variance, so a few
    enormous sessions dominate -- the self-similar load millions of real
    users produce, and the pattern that defeats admission control tuned
    on memoryless arrivals.  Trains from concurrent sessions interleave;
    the returned times are sorted.
    """
    if n < 0:
        raise WorkloadError("n must be non-negative")
    if session_rate <= 0 or within_rate <= 0:
        raise WorkloadError("rates must be positive")
    if alpha <= 1.0:
        raise WorkloadError("alpha must be > 1 (finite mean session length)")
    if max_session_jobs < 1:
        raise WorkloadError("max_session_jobs must be >= 1")
    times: list[int] = []
    t = float(start)
    while len(times) < n:
        t += rng.exponential(1.0 / session_rate)
        length = min(int(math.ceil(rng.pareto(alpha) + 1.0)), max_session_jobs)
        when = t
        times.append(int(when))
        for _ in range(length - 1):
            when += rng.exponential(1.0 / within_rate)
            times.append(int(when))
    return np.sort(np.asarray(times[:n], dtype=np.int64))


def spike_arrivals(
    n_background: int,
    n_spike: int,
    rate: float,
    spike_time: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Poisson background plus ``n_spike`` simultaneous jobs at
    ``spike_time`` -- the overload pattern admission control exists for."""
    background = poisson_arrivals(n_background, rate, rng)
    spike = np.full(n_spike, spike_time, dtype=np.int64)
    return np.sort(np.concatenate([background, spike]))
