"""Periodic / sporadic DAG task sets (real-time style workloads).

The paper's related work (refs [17, 18, 25-31]) studies *recurring*
DAG tasks: a task releases a job instance every period, each instance
due by the next release (implicit deadline) or an explicit relative
deadline.  This module unrolls such task sets into
:class:`~repro.sim.jobs.JobSpec` streams so the throughput schedulers
can be evaluated on the workloads that community uses, and computes the
standard utilization metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dag.graph import DAGStructure
from repro.errors import WorkloadError
from repro.sim.jobs import JobSpec


@dataclass(frozen=True)
class PeriodicTask:
    """One recurring DAG task.

    Attributes
    ----------
    structure:
        The DAG every instance executes.
    period:
        Release separation (exact for periodic, minimum for sporadic).
    relative_deadline:
        Defaults to the period (implicit deadline).
    profit:
        Profit per on-time instance.
    offset:
        First release time.
    """

    structure: DAGStructure
    period: int
    relative_deadline: Optional[int] = None
    profit: float = 1.0
    offset: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise WorkloadError("period must be >= 1")
        deadline = self.deadline
        if deadline < 1:
            raise WorkloadError("relative deadline must be >= 1")
        if self.offset < 0:
            raise WorkloadError("offset must be non-negative")

    @property
    def deadline(self) -> int:
        """Effective relative deadline (implicit = period)."""
        return (
            self.relative_deadline
            if self.relative_deadline is not None
            else self.period
        )

    @property
    def utilization(self) -> float:
        """``W / period`` — the task's long-run processor demand."""
        return self.structure.total_work / self.period

    @property
    def density(self) -> float:
        """``W / min(D, period)`` — the classic density metric."""
        return self.structure.total_work / min(self.deadline, self.period)


def taskset_utilization(tasks: Sequence[PeriodicTask]) -> float:
    """Total utilization of the task set (compare against ``m``)."""
    return sum(task.utilization for task in tasks)


def unroll_periodic(
    tasks: Sequence[PeriodicTask],
    horizon: int,
    sporadic_jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> list[JobSpec]:
    """Unroll a task set into job instances over ``[0, horizon)``.

    ``sporadic_jitter > 0`` turns periodic releases into sporadic ones:
    each inter-release gap is the period times ``1 + U(0, jitter)``.
    """
    if horizon < 1:
        raise WorkloadError("horizon must be >= 1")
    if sporadic_jitter < 0:
        raise WorkloadError("sporadic_jitter must be non-negative")
    if sporadic_jitter > 0 and rng is None:
        raise WorkloadError("sporadic_jitter needs an rng")
    specs: list[JobSpec] = []
    job_id = 0
    for task in tasks:
        release = float(task.offset)
        while release < horizon:
            arrival = int(release)
            specs.append(
                JobSpec(
                    job_id,
                    task.structure,
                    arrival=arrival,
                    deadline=arrival + task.deadline,
                    profit=task.profit,
                )
            )
            job_id += 1
            gap = task.period
            if sporadic_jitter > 0:
                assert rng is not None
                gap = task.period * (1.0 + float(rng.uniform(0.0, sporadic_jitter)))
            release += gap
    specs.sort(key=lambda sp: (sp.arrival, sp.job_id))
    return specs


def harmonic_taskset(
    structures: Sequence[DAGStructure],
    base_period: int,
    m: int,
    target_utilization: float = 0.8,
) -> list[PeriodicTask]:
    """Build a harmonic task set (periods = powers of two x base) scaled
    to roughly ``target_utilization * m`` total utilization.

    Tasks get periods ``base, 2*base, 4*base, ...`` cyclically; the base
    period is then scaled so utilization hits the target (rounded up to
    keep periods integral, so the realized utilization is at most the
    target).
    """
    if not structures:
        raise WorkloadError("need at least one structure")
    if target_utilization <= 0:
        raise WorkloadError("target_utilization must be positive")
    raw = [
        (structure, base_period * (2 ** (i % 4)))
        for i, structure in enumerate(structures)
    ]
    utilization = sum(s.total_work / p for s, p in raw)
    scale = utilization / (target_utilization * m)
    tasks = []
    for structure, period in raw:
        scaled = max(
            math.ceil(period * scale), math.ceil(structure.span) + 1
        )
        tasks.append(PeriodicTask(structure=structure, period=scaled))
    return tasks
