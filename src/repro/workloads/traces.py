"""Synthetic cluster-trace workloads (diurnal demand pattern).

Production clusters exhibit strong time-of-day demand cycles; the paper
targets exactly those systems (its motivation cites parallel runtimes
used in datacenter services).  This generator modulates a Poisson
arrival process with a sinusoidal (diurnal) rate so schedulers face
alternating calm and overload phases within one run -- the regime where
admission control matters only part of the time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.sim.jobs import JobSpec
from repro.workloads.dag_families import make_family
from repro.workloads.deadlines import slack_deadline
from repro.workloads.profits import make_profit_sampler


@dataclass
class DiurnalConfig:
    """Configuration of a diurnal synthetic trace.

    ``base_load`` is the mean offered load; the instantaneous load
    oscillates between ``base_load * (1 - swing)`` and
    ``base_load * (1 + swing)`` over each ``day_length`` steps.
    """

    n_jobs: int = 200
    m: int = 16
    base_load: float = 1.0
    swing: float = 0.8
    day_length: int = 1024
    family: str = "mixed"
    epsilon: float = 1.0
    slack_range: tuple[float, float] = (1.0, 1.5)
    profit: str = "heavy_tailed"
    seed: int = 0
    family_kwargs: dict = field(default_factory=dict)


def generate_diurnal_trace(config: DiurnalConfig) -> list[JobSpec]:
    """Materialize a diurnal workload (deterministic per seed).

    Uses thinning: candidate arrivals are drawn at the peak rate and
    accepted with probability proportional to the instantaneous rate.
    """
    if not 0 <= config.swing < 1:
        raise WorkloadError("swing must be in [0, 1)")
    if config.base_load <= 0:
        raise WorkloadError("base_load must be positive")
    if config.day_length < 2:
        raise WorkloadError("day_length must be >= 2")
    rng = np.random.default_rng(config.seed)
    family = make_family(config.family, **config.family_kwargs)
    profit_sampler = make_profit_sampler(config.profit)

    structures = [family(rng) for _ in range(config.n_jobs)]
    mean_work = float(np.mean([s.total_work for s in structures])) or 1.0
    base_rate = config.base_load * config.m / mean_work
    peak_rate = base_rate * (1.0 + config.swing)

    def rate_at(t: float) -> float:
        phase = 2.0 * math.pi * t / config.day_length
        return base_rate * (1.0 + config.swing * math.sin(phase))

    specs: list[JobSpec] = []
    t = 0.0
    for i, structure in enumerate(structures):
        # thinning loop: draw candidates at the peak rate
        while True:
            t += rng.exponential(1.0 / peak_rate)
            if rng.random() <= rate_at(t) / peak_rate:
                break
        arrival = int(t)
        rel = slack_deadline(
            structure,
            config.m,
            config.epsilon,
            rng,
            slack_low=config.slack_range[0],
            slack_high=config.slack_range[1],
        )
        specs.append(
            JobSpec(
                i,
                structure,
                arrival=arrival,
                deadline=arrival + rel,
                profit=profit_sampler(structure, rng),
            )
        )
    return specs


def phase_of(spec: JobSpec, day_length: int) -> str:
    """Classify a job's arrival as ``"peak"`` or ``"trough"`` half-day."""
    phase = math.sin(2.0 * math.pi * spec.arrival / day_length)
    return "peak" if phase >= 0 else "trough"
