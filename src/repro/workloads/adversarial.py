"""Adversarial instances: the paper's Section 4 examples and overload
streams.

* :func:`fig1_jobs` / :func:`fig2_jobs` -- single-job instances built
  from the Figure 1 / Figure 2 DAGs with deadlines placed exactly where
  the paper's lower-bound arguments need them;
* :func:`overload_stream` -- sustained overload: far more profitable
  work arrives than ``m`` processors can finish, the regime where
  admission control separates S from work-conserving baselines;
* :func:`edf_domino` -- the classic EDF overload trap: a stream of
  almost-finished-then-preempted jobs that makes EDF complete nothing
  while a selective scheduler completes half.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dag import builders
from repro.errors import WorkloadError
from repro.sim.jobs import JobSpec
from repro.workloads.deadlines import sequential_bound


def fig1_jobs(
    m: int,
    total_work: float | None = None,
    deadline_factor: float = 1.0,
    profit: float = 1.0,
    node_work: float = 1.0,
) -> list[JobSpec]:
    """One Figure-1 job with relative deadline ``factor * W/m``.

    With ``deadline_factor = 1`` the deadline equals the clairvoyant
    completion time ``W/m = L``; Theorem 1 says a semi-non-clairvoyant
    scheduler then needs speed ``2 - 1/m`` to finish on time.  Use a
    coarse ``node_work`` when sweeping fractional speeds (a node
    occupies ``ceil(w/s)`` whole steps, so unit nodes cannot speed up).
    """
    if total_work is None:
        # chain of 8*m nodes, block of 8*m*(m-1) nodes
        total_work = float(8 * m * m) * node_work
    dag = builders.block_with_chain(total_work, m, node_work=node_work)
    deadline = max(1, math.ceil(deadline_factor * total_work / m))
    return [JobSpec(0, dag, arrival=0, deadline=deadline, profit=profit)]


def fig2_jobs(
    m: int,
    total_work: float,
    span: float,
    node_work: float = 1.0,
    deadline_factor: float = 1.0,
    profit: float = 1.0,
) -> list[JobSpec]:
    """One Figure-2 job with deadline ``factor * ((W-L)/m + L)``.

    Even a clairvoyant scheduler needs
    ``(L - eps) + (W - L + eps)/m`` for this DAG, so with
    ``deadline_factor`` slightly below 1 *nobody* can finish on time --
    the justification for the paper's deadline assumption.
    """
    dag = builders.chain_then_block(total_work, span, node_work)
    bound = (total_work - span) / m + span
    deadline = max(1, math.ceil(deadline_factor * bound))
    return [JobSpec(0, dag, arrival=0, deadline=deadline, profit=profit)]


def overload_stream(
    m: int,
    epsilon: float,
    n_jobs: int,
    overload: float,
    rng: np.random.Generator,
    work_low: int = 16,
    work_high: int = 128,
) -> list[JobSpec]:
    """Sustained overload of fork-join jobs at ``overload`` x capacity.

    Every deadline meets Theorem 2's assumption (slack exactly 1+eps),
    but total offered work is ``overload`` times what ``m`` processors
    can do, so every scheduler must *choose*; profits are heavy-tailed
    so the choice matters.
    """
    if overload <= 0:
        raise WorkloadError("overload must be positive")
    specs: list[JobSpec] = []
    t = 0.0
    mean_work = (work_low + work_high) / 2.0
    rate = overload * m / mean_work  # jobs per step
    for i in range(n_jobs):
        t += rng.exponential(1.0 / rate)
        width = int(rng.integers(2, 4 * m))
        node = max(1, int(rng.integers(work_low, work_high + 1)) // width)
        dag = builders.fork_join(width, node_work=node)
        rel = max(1, math.ceil((1.0 + epsilon) * sequential_bound(dag, m)))
        profit = float(1.0 + rng.pareto(1.5))
        specs.append(
            JobSpec(
                i,
                dag,
                arrival=int(t),
                deadline=int(t) + rel,
                profit=profit,
            )
        )
    return specs


def admission_trap(
    m: int,
    n_pairs: int,
    block_steps: int = 16,
    trap_profit: float = 10.0,
    rng: np.random.Generator | None = None,
) -> list[JobSpec]:
    """Alternating doomed-but-dense and feasible jobs.

    Every ``block_steps`` steps two jobs arrive:

    * a **trap**: a full-machine block (work ``m * block_steps``) with a
      deadline *one step below* the feasibility limit ``max(L, W/m)``
      and a large profit -- top density, impossible to finish;
    * a **payload**: the same block with an amply slack deadline and
      unit profit.

    A scheduler without admission control runs the densest job first
    and wastes the whole machine on traps, completing (almost) nothing;
    the paper's conditions (1)+(2) park every trap at arrival (it can
    never be delta-good), so S runs the payloads.  This is the workload
    where admission control is the difference between ~0 and ~full
    profit.
    """
    specs: list[JobSpec] = []
    for i in range(n_pairs):
        arrival = i * block_steps
        trap_dag = builders.block(m, node_work=float(block_steps), name="trap")
        # infeasible by one step: even the whole machine needs block_steps
        trap_deadline = arrival + block_steps - 1
        if block_steps < 2:
            raise WorkloadError("block_steps must be >= 2")
        specs.append(
            JobSpec(
                2 * i,
                trap_dag,
                arrival=arrival,
                deadline=trap_deadline,
                profit=trap_profit,
            )
        )
        payload_dag = builders.block(m, node_work=float(block_steps), name="payload")
        payload_deadline = arrival + 8 * block_steps
        specs.append(
            JobSpec(
                2 * i + 1,
                payload_dag,
                arrival=arrival,
                deadline=payload_deadline,
                profit=1.0,
            )
        )
    return specs


def edf_domino(
    m: int,
    n_jobs: int,
    job_work: int = 64,
    profit: float = 1.0,
) -> list[JobSpec]:
    """The EDF overload trap.

    Job ``i`` arrives at ``i * gap`` with work ``job_work`` (a block of
    width m, so it needs ``job_work/m`` dedicated steps) and deadline
    just after the *next* arrival.  EDF always switches to the newer,
    earlier-deadline-relative work in a way that lets a nearly finished
    job expire; completing every other job is feasible, so a selective
    scheduler earns ~n/2 while EDF earns ~0.

    Construction: deadline ``= arrival + need + gap_slack`` where the
    next job arrives ``gap = need - 1`` later with an *earlier* absolute
    deadline is impossible (deadlines increase with arrival), so instead
    each job's deadline is set so that serving the newest job starves
    the previous one exactly: gap ``= ceil(need/2)``.
    """
    need = math.ceil(job_work / m)  # dedicated steps to finish one job
    gap = max(1, need // 2)
    specs: list[JobSpec] = []
    for i in range(n_jobs):
        arrival = i * gap
        # a block of m nodes, each `need` steps long: the job occupies
        # the whole machine for `need` dedicated steps
        dag = builders.block(m, node_work=float(need))
        deadline = arrival + need + gap - 1
        specs.append(JobSpec(i, dag, arrival=arrival, deadline=deadline,
                             profit=profit))
    return specs
