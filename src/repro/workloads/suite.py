"""Workload suite: composing arrivals, DAG families, deadlines and
profits into :class:`~repro.sim.jobs.JobSpec` lists.

:func:`generate_workload` is the one entry point experiments use; the
``load`` parameter is offered work relative to machine capacity
(``load = 1`` means arriving work equals ``m`` processor-steps per
step on average).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.sim.jobs import JobSpec
from repro.workloads.dag_families import DAGFamily, make_family
from repro.workloads.deadlines import slack_deadline, tight_deadline
from repro.workloads.profits import (
    ProfitFnSampler,
    ProfitSampler,
    make_profit_sampler,
)


@dataclass
class WorkloadConfig:
    """Declarative description of a random workload.

    Attributes
    ----------
    n_jobs:
        Number of jobs.
    m:
        Machine size the deadlines are computed against.
    load:
        Offered load relative to capacity (1.0 = saturation).
    family:
        DAG family name (see :data:`repro.workloads.dag_families.FAMILIES`)
        or ``"mixed"``.
    epsilon:
        Slack parameter used for deadline assignment.
    deadline_policy:
        ``"slack"`` (meets Theorem 2's assumption) or ``"tight"``
        (clairvoyant-limit deadlines, violating it).
    slack_range:
        ``(low, high)`` random extra slack beyond ``1+epsilon``
        (slack policy only).
    tight_factor:
        Multiple of ``max(L, W/m)`` (tight policy only).
    profit:
        Scalar-profit sampler name (throughput setting).
    profit_fn_sampler:
        When set, produces general-profit jobs instead of deadline jobs.
    seed:
        RNG seed (fully determines the workload).
    """

    n_jobs: int = 100
    m: int = 8
    load: float = 1.0
    family: str = "mixed"
    epsilon: float = 1.0
    deadline_policy: str = "slack"
    slack_range: tuple[float, float] = (1.0, 2.0)
    tight_factor: float = 1.0
    profit: str = "uniform"
    profit_fn_sampler: Optional[ProfitFnSampler] = None
    seed: int = 0
    family_kwargs: dict = field(default_factory=dict)
    profit_kwargs: dict = field(default_factory=dict)


def generate_workload(config: WorkloadConfig) -> list[JobSpec]:
    """Materialize a workload from its config (deterministic per seed)."""
    rng = np.random.default_rng(config.seed)
    family: DAGFamily = make_family(config.family, **config.family_kwargs)
    profit_sampler: ProfitSampler = make_profit_sampler(
        config.profit, **config.profit_kwargs
    )

    # Draw structures first so the arrival rate can target the load.
    structures = [family(rng) for _ in range(config.n_jobs)]
    mean_work = float(np.mean([s.total_work for s in structures])) or 1.0
    if config.load <= 0:
        raise WorkloadError("load must be positive")
    rate = config.load * config.m / mean_work  # jobs per time step

    specs: list[JobSpec] = []
    t = 0.0
    for i, structure in enumerate(structures):
        t += rng.exponential(1.0 / rate)
        arrival = int(t)
        if config.profit_fn_sampler is not None:
            fn = config.profit_fn_sampler(structure, config.m, config.epsilon, rng)
            specs.append(
                JobSpec(i, structure, arrival=arrival, profit_fn=fn)
            )
            continue
        if config.deadline_policy == "slack":
            rel = slack_deadline(
                structure,
                config.m,
                config.epsilon,
                rng,
                slack_low=config.slack_range[0],
                slack_high=config.slack_range[1],
            )
        elif config.deadline_policy == "tight":
            rel = tight_deadline(
                structure, config.m, factor=config.tight_factor, rng=rng, jitter=0.25
            )
        else:
            raise WorkloadError(
                f"unknown deadline policy {config.deadline_policy!r}"
            )
        profit = profit_sampler(structure, rng)
        specs.append(
            JobSpec(
                i,
                structure,
                arrival=arrival,
                deadline=arrival + rel,
                profit=profit,
            )
        )
    return specs


def workload_capacity_ratio(specs: list[JobSpec], m: int) -> float:
    """Offered work divided by machine capacity over the active window --
    a posteriori load measurement for reporting."""
    if not specs:
        return 0.0
    total_work = sum(sp.work for sp in specs)
    start = min(sp.arrival for sp in specs)
    end = max(
        (sp.deadline if sp.deadline is not None else sp.arrival + math.ceil(sp.work))
        for sp in specs
    )
    horizon = max(1, end - start)
    return total_work / (m * horizon)
