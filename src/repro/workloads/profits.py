"""Profit samplers: scalar profits and general profit functions.

Scalar samplers drive the throughput experiments; the density spread
(``max p/W`` over ``min p/W``) is the classic hardness knob, so each
sampler documents how it shapes it.  Function samplers build the
general-profit workloads of experiment E6, always honoring Theorem 3's
flatness assumption through the ``x_star`` knee.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.dag.graph import DAGStructure
from repro.errors import WorkloadError
from repro.profit.functions import (
    FlatThenExponential,
    FlatThenLinear,
    ProfitFunction,
    Staircase,
)

ProfitSampler = Callable[[DAGStructure, np.random.Generator], float]
ProfitFnSampler = Callable[[DAGStructure, int, float, np.random.Generator], ProfitFunction]


# ----------------------------------------------------------------------
# Scalar profits (throughput setting)
# ----------------------------------------------------------------------
def unit_profit() -> ProfitSampler:
    """Every job worth 1 (pure job-count throughput)."""

    def sample(structure: DAGStructure, rng: np.random.Generator) -> float:
        return 1.0

    return sample


def uniform_profit(low: float = 0.5, high: float = 2.0) -> ProfitSampler:
    """Profit uniform in ``[low, high]`` regardless of size: small jobs
    become disproportionately dense."""
    if low <= 0 or high < low:
        raise WorkloadError("need 0 < low <= high")

    def sample(structure: DAGStructure, rng: np.random.Generator) -> float:
        return float(rng.uniform(low, high))

    return sample


def work_proportional_profit(rate: float = 1.0, noise: float = 0.0) -> ProfitSampler:
    """Profit ~ ``rate * W`` (uniform density): the benign regime where
    greedy density has no signal to exploit."""
    if rate <= 0:
        raise WorkloadError("rate must be positive")

    def sample(structure: DAGStructure, rng: np.random.Generator) -> float:
        factor = 1.0 if noise <= 0 else float(rng.uniform(1.0 - noise, 1.0 + noise))
        return rate * structure.total_work * max(factor, 1e-6)

    return sample


def heavy_tailed_profit(alpha: float = 1.5, scale: float = 1.0) -> ProfitSampler:
    """Pareto(alpha) profits: a few jackpot jobs dominate total profit,
    stressing the admission policy's ability to hold capacity for them."""
    if alpha <= 0:
        raise WorkloadError("alpha must be positive")

    def sample(structure: DAGStructure, rng: np.random.Generator) -> float:
        return scale * float(1.0 + rng.pareto(alpha))

    return sample


#: Registry for experiment configs.
PROFIT_SAMPLERS: dict[str, Callable[[], ProfitSampler]] = {
    "unit": unit_profit,
    "uniform": uniform_profit,
    "work_proportional": work_proportional_profit,
    "heavy_tailed": heavy_tailed_profit,
}


def make_profit_sampler(name: str, **kwargs) -> ProfitSampler:
    """Instantiate a registered scalar-profit sampler."""
    try:
        factory = PROFIT_SAMPLERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown profit sampler {name!r}; known: {sorted(PROFIT_SAMPLERS)}"
        ) from None
    return factory(**kwargs)


# ----------------------------------------------------------------------
# General profit functions (Section 5 setting)
# ----------------------------------------------------------------------
def _knee(structure: DAGStructure, m: int, epsilon: float, slack: float) -> float:
    """An x* honoring Theorem 3: ``slack * (1+eps) * ((W-L)/m + L)``."""
    bound = (structure.total_work - structure.span) / m + structure.span
    return slack * (1.0 + epsilon) * bound


def linear_decay_fn(
    peak_low: float = 0.5,
    peak_high: float = 2.0,
    decay_factor: float = 2.0,
    knee_slack: float = 1.0,
) -> ProfitFnSampler:
    """Flat to the knee, then linear to zero over ``decay_factor * x*``."""

    def sample(
        structure: DAGStructure, m: int, epsilon: float, rng: np.random.Generator
    ) -> ProfitFunction:
        peak = float(rng.uniform(peak_low, peak_high))
        x_star = _knee(structure, m, epsilon, knee_slack)
        return FlatThenLinear(peak, x_star, decay_span=decay_factor * x_star)

    return sample


def exponential_decay_fn(
    peak_low: float = 0.5,
    peak_high: float = 2.0,
    tau_factor: float = 1.0,
    knee_slack: float = 1.0,
) -> ProfitFnSampler:
    """Flat to the knee, then exponential with time constant
    ``tau_factor * x*``."""

    def sample(
        structure: DAGStructure, m: int, epsilon: float, rng: np.random.Generator
    ) -> ProfitFunction:
        peak = float(rng.uniform(peak_low, peak_high))
        x_star = _knee(structure, m, epsilon, knee_slack)
        return FlatThenExponential(peak, x_star, tau=tau_factor * x_star)

    return sample


def staircase_fn(
    peak_low: float = 0.5,
    peak_high: float = 2.0,
    steps: int = 3,
    step_span_factor: float = 0.75,
    knee_slack: float = 1.0,
) -> ProfitFnSampler:
    """Flat to the knee, then ``steps`` equal drops to zero."""
    if steps < 1:
        raise WorkloadError("steps must be >= 1")

    def sample(
        structure: DAGStructure, m: int, epsilon: float, rng: np.random.Generator
    ) -> ProfitFunction:
        peak = float(rng.uniform(peak_low, peak_high))
        x_star = _knee(structure, m, epsilon, knee_slack)
        span = max(1.0, step_span_factor * x_star)
        return Staircase(peak, _staircase_levels(peak, x_star, span, steps))

    return sample


def _staircase_levels(
    peak: float, x_star: float, span: float, steps: int
) -> list[tuple[float, float]]:
    """Breakpoints for a flat-then-staircase decay ending at zero."""
    levels: list[tuple[float, float]] = []
    for k in range(steps):
        t_k = x_star + k * span / steps
        p_k = peak * (1.0 - (k + 1) / steps)
        levels.append((t_k, p_k))
    return levels


#: Registry for the general-profit experiment.
PROFIT_FN_SAMPLERS: dict[str, Callable[[], ProfitFnSampler]] = {
    "linear": linear_decay_fn,
    "exponential": exponential_decay_fn,
    "staircase": staircase_fn,
}


def make_profit_fn_sampler(name: str, **kwargs) -> ProfitFnSampler:
    """Instantiate a registered profit-function sampler."""
    try:
        factory = PROFIT_FN_SAMPLERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown profit-fn sampler {name!r}; known: {sorted(PROFIT_FN_SAMPLERS)}"
        ) from None
    return factory(**kwargs)
