"""E8 -- Empirical verification of the proof's structural lemmas.

Runs assumption-respecting workloads under the invariant monitor and
the post-hoc verifiers.  Expected outcome: zero violations of Lemma 1
(``n_i <= b^2 m``), Lemma 2 (delta-goodness), Lemma 3
(``x_i n_i <= a W_i``), Observation 3 (band loads ``<= b m``) and
Observation 2 (completed jobs used ``<= ceil(x_i) n_i`` processor
steps), plus clean profit/work accounting.
"""

from __future__ import annotations

from repro.analysis.verify import (
    verify_profits,
    verify_sns_observation2,
    verify_work_accounting,
)
from repro.core import InvariantMonitor, SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the invariant-verification table."""
    m = 8
    n_jobs = 40 if quick else 100
    seeds = [0, 1] if quick else [0, 1, 2, 3, 4]
    epsilons = [0.25, 1.0] if quick else [0.25, 0.5, 1.0, 2.0]
    rows = []
    for eps in epsilons:
        for seed in seeds:
            specs = generate_workload(
                WorkloadConfig(
                    n_jobs=n_jobs,
                    m=m,
                    load=2.0,
                    family="mixed",
                    epsilon=eps,
                    deadline_policy="slack",
                    slack_range=(1.0, 2.0),
                    profit="uniform",
                    seed=seed,
                )
            )
            scheduler = SNSScheduler(epsilon=eps)
            monitor = InvariantMonitor(scheduler)
            result = Simulator(m=m, scheduler=monitor, validate=True).run(specs)
            post = (
                verify_profits(result, specs)
                + verify_work_accounting(result, specs)
                + verify_sns_observation2(result, scheduler)
            )
            rows.append(
                [
                    eps,
                    seed,
                    monitor.report.checks,
                    len(monitor.report.violations),
                    monitor.assumption_violations,
                    len(post),
                ]
            )
    total_violations = sum(r[3] + r[5] for r in rows)
    result = ExperimentResult(
        key="E8",
        title="Lemmas 1-3 / Observations 2-3: runtime invariant checks",
        headers=[
            "epsilon",
            "seed",
            "checks",
            "lemma violations",
            "assumption misses",
            "post-hoc violations",
        ],
        rows=rows,
        claim=(
            "On assumption-respecting workloads every structural lemma "
            "of the analysis holds at every event of every run."
        ),
    )
    result.notes.append(
        f"total violations across all runs: {total_violations} (expected 0)"
    )
    return result
