"""Experiment runners: one module per table/figure of the reproduction.

See DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
recorded outcomes.  Use :func:`repro.experiments.registry.run_experiment`
or the ``repro-experiments`` CLI.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
