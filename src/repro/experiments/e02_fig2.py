"""E2 -- Figure 2: deadlines below ``(W-L)/m + L`` are hopeless.

The Figure 2 DAG is a chain of ``L - eps`` followed by a block of
``W - L + eps`` (node size ``eps``).  *Every* scheduler -- even a fully
clairvoyant one -- needs ``(L - eps) + (W - L + eps)/m`` time, which
approaches ``(W - L)/m + L`` as ``eps -> 0``.  This justifies the
paper's deadline assumption: below that bound no algorithm can be
competitive, so assuming ``D >= (1+eps_slack)((W-L)/m + L)`` is the
weakest reasonable slack.

The table sweeps the node size: measured best completion time over all
pick policies, the bound, their ratio (-> 1 as eps -> 0), and whether a
deadline at 97% of the bound is met by anyone (expected: no once eps is
small).
"""

from __future__ import annotations

import math

from repro.baselines import FIFOScheduler
from repro.dag import chain_then_block
from repro.experiments.common import ExperimentResult, first_record
from repro.sim import (
    AdversarialPicker,
    CriticalPathPicker,
    FIFOPicker,
    JobSpec,
    Simulator,
)


def _best_completion(m: int, dag) -> int:
    best = None
    for picker in (CriticalPathPicker(), FIFOPicker(), AdversarialPicker()):
        spec = JobSpec(0, dag, arrival=0, deadline=10 ** 9, profit=1.0)
        record = first_record(
            Simulator(m=m, scheduler=FIFOScheduler(), picker=picker).run([spec])
        )
        assert record.completion_time is not None
        if best is None or record.completion_time < best:
            best = record.completion_time
    return best


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the Figure 2 deadline-necessity table."""
    m = 8
    # Work/span chosen so every node-size divides both chain and block:
    # span 64, total work 64*m; node sizes shrink toward 0 relative to L.
    span = 64.0
    total = float(span * m)
    node_sizes = [16.0, 8.0, 4.0] if quick else [16.0, 8.0, 4.0, 2.0, 1.0]
    rows = []
    for eps in node_sizes:
        dag = chain_then_block(total, span, eps)
        bound = (total - span) / m + span
        clairvoyant_exact = (span - eps) + (total - span + eps) / m
        t_best = _best_completion(m, dag)
        # Can anyone meet a deadline at 97% of the bound?
        deadline = math.floor(0.97 * bound)
        met = t_best <= deadline
        rows.append(
            [
                eps,
                dag.num_nodes,
                round(bound, 2),
                round(clairvoyant_exact, 2),
                t_best,
                round(t_best / bound, 4),
                deadline,
                "yes" if met else "no",
            ]
        )
    result = ExperimentResult(
        key="E2",
        title="Figure 2: necessity of the deadline assumption",
        headers=[
            "node_size",
            "nodes",
            "(W-L)/m+L",
            "exact_lb",
            "T_best",
            "T_best/bound",
            "0.97*bound",
            "met?",
        ],
        rows=rows,
        claim=(
            "Even clairvoyant schedulers need (L-eps) + (W-L+eps)/m -> "
            "(W-L)/m + L as eps -> 0, so deadlines below the bound are "
            "unmeetable by any scheduler."
        ),
    )
    tail_ratio = rows[-1][5]
    result.notes.append(
        f"smallest node size: measured/bound = {tail_ratio} (theory -> 1)"
    )
    return result
