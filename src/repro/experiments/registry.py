"""Experiment registry and CLI.

``repro-experiments all`` regenerates every table of the reproduction;
``repro-experiments E1 E7 --quick`` runs a subset at reduced size.

The experiments live in the shared component registry
(:data:`repro.scenarios.registry.REGISTRY`, kind ``"experiment"``)
alongside schedulers, routers and the rest of the pluggable surface;
:data:`EXPERIMENTS` is a read-only mapping view over that kind, so
existing ``for key in EXPERIMENTS`` / ``EXPERIMENTS[key]`` call sites
keep working while registration, duplicate detection and typo
suggestions are the registry's.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Mapping
from typing import Callable, Iterator

from repro.errors import ScenarioError
from repro.experiments import (
    e01_fig1,
    e02_fig2,
    e03_thm2,
    e04_cor1,
    e05_cor2,
    e06_thm3,
    e07_baselines,
    e08_invariants,
    e09_ablations,
    e10_constants,
    e11_engine,
    e12_extensions,
    e13_preemption_cost,
    e14_small_exact,
    e15_cluster,
)
from repro.experiments.common import ExperimentResult
from repro.scenarios.registry import REGISTRY


class RegistryView(Mapping):
    """Read-only ``{name: factory}`` view over one registry kind."""

    def __init__(self, registry, kind: str) -> None:
        self._registry = registry
        self._kind = kind

    def __getitem__(self, name: str) -> Callable:
        try:
            return self._registry.get(self._kind, name).factory
        except ScenarioError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names(self._kind))

    def __len__(self) -> int:
        return len(self._registry.names(self._kind))


def _install_experiments() -> None:
    """Register E1..E15 (idempotent across re-imports)."""
    modules = [
        ("E1", e01_fig1),
        ("E2", e02_fig2),
        ("E3", e03_thm2),
        ("E4", e04_cor1),
        ("E5", e05_cor2),
        ("E6", e06_thm3),
        ("E7", e07_baselines),
        ("E8", e08_invariants),
        ("E9", e09_ablations),
        ("E10", e10_constants),
        ("E11", e11_engine),
        ("E12", e12_extensions),
        ("E13", e13_preemption_cost),
        ("E14", e14_small_exact),
        ("E15", e15_cluster),
    ]
    for key, module in modules:
        if not REGISTRY.has("experiment", key):
            REGISTRY.register(
                "experiment",
                key,
                module.run,
                summary=(module.__doc__ or "").strip().split("\n")[0],
            )


_install_experiments()

#: Mapping view over the registry's ``experiment`` kind (E1..E15).
EXPERIMENTS: Mapping[str, Callable[[bool], ExperimentResult]] = RegistryView(
    REGISTRY, "experiment"
)


def run_experiment(key: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by key (``"E1"`` .. ``"E15"``)."""
    try:
        component = REGISTRY.get("experiment", key.upper())
    except ScenarioError as exc:
        raise KeyError(str(exc)) from None
    return component.create(quick)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the reproduction's experiment tables."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment keys (E1..E15) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes (CI-friendly)"
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown instead of text"
    )
    args = parser.parse_args(argv)

    if args.experiments in (["all"], []):
        keys = sorted(EXPERIMENTS, key=lambda k: int(k[1:]))
    else:
        keys = [k.upper() for k in args.experiments]
    for key in keys:
        t0 = time.perf_counter()
        result = run_experiment(key, quick=args.quick)
        elapsed = time.perf_counter() - t0
        print(result.to_markdown() if args.markdown else result.to_text())
        print(f"[{key} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
