"""Experiment registry and CLI.

``repro-experiments all`` regenerates every table of the reproduction;
``repro-experiments E1 E7 --quick`` runs a subset at reduced size.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    e01_fig1,
    e02_fig2,
    e03_thm2,
    e04_cor1,
    e05_cor2,
    e06_thm3,
    e07_baselines,
    e08_invariants,
    e09_ablations,
    e10_constants,
    e11_engine,
    e12_extensions,
    e13_preemption_cost,
    e14_small_exact,
    e15_cluster,
)
from repro.experiments.common import ExperimentResult

EXPERIMENTS: dict[str, Callable[[bool], ExperimentResult]] = {
    "E1": e01_fig1.run,
    "E2": e02_fig2.run,
    "E3": e03_thm2.run,
    "E4": e04_cor1.run,
    "E5": e05_cor2.run,
    "E6": e06_thm3.run,
    "E7": e07_baselines.run,
    "E8": e08_invariants.run,
    "E9": e09_ablations.run,
    "E10": e10_constants.run,
    "E11": e11_engine.run,
    "E12": e12_extensions.run,
    "E13": e13_preemption_cost.run,
    "E14": e14_small_exact.run,
    "E15": e15_cluster.run,
}


def run_experiment(key: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by key (``"E1"`` .. ``"E15"``)."""
    try:
        runner = EXPERIMENTS[key.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {key!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the reproduction's experiment tables."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment keys (E1..E15) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes (CI-friendly)"
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown instead of text"
    )
    args = parser.parse_args(argv)

    keys = list(EXPERIMENTS) if args.experiments == ["all"] or args.experiments == [] else [
        k.upper() for k in args.experiments
    ]
    for key in keys:
        t0 = time.perf_counter()
        result = run_experiment(key, quick=args.quick)
        elapsed = time.perf_counter() - t0
        print(result.to_markdown() if args.markdown else result.to_text())
        print(f"[{key} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
