"""E3 -- Theorem 2: constant competitiveness under the slack assumption.

Workloads whose deadlines all satisfy
``D >= (1+eps)((W-L)/m + L)`` are run under scheduler S(eps) at speed 1
and normalized by the LP upper bound on clairvoyant OPT.  The theorem
promises a ratio bounded by a function of eps alone (O(1/eps^6)); the
empirical expectation is (a) the ratio is a modest constant, far below
the proven bound, (b) it degrades as eps -> 0, and (c) it is flat in
the job count (no dependence on n).
"""

from __future__ import annotations

from repro.analysis import interval_lp_upper_bound
from repro.analysis.stats import Aggregate
from repro.core import Constants, SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def _fraction(epsilon: float, n_jobs: int, m: int, load: float, seed: int) -> tuple[float, float]:
    """(S profit, LP bound) on one sampled workload."""
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs,
            m=m,
            load=load,
            family="mixed",
            epsilon=epsilon,
            deadline_policy="slack",
            slack_range=(1.0, 1.5),
            profit="uniform",
            seed=seed,
        )
    )
    result = Simulator(m=m, scheduler=SNSScheduler(epsilon=epsilon)).run(specs)
    bound = interval_lp_upper_bound(specs, m)
    return result.total_profit, bound


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the Theorem 2 competitiveness table."""
    m = 8
    n_jobs = 40 if quick else 80
    seeds = [0, 1] if quick else [0, 1, 2, 3, 4]
    load = 2.0  # mild overload: someone must lose, so ratios are informative
    epsilons = [0.25, 0.5, 1.0, 2.0] if quick else [0.25, 0.5, 1.0, 2.0, 4.0]
    rows = []
    for eps in epsilons:
        fractions = []
        for seed in seeds:
            profit, bound = _fraction(eps, n_jobs, m, load, seed)
            if bound > 0:
                fractions.append(profit / bound)
        agg = Aggregate.of(fractions)
        proven = Constants.from_epsilon(eps).competitive_ratio_throughput
        rows.append(
            [
                eps,
                round(agg.mean, 4),
                round(agg.std, 4),
                round(1.0 / agg.mean, 2) if agg.mean > 0 else float("inf"),
                f"{proven:.3g}",
            ]
        )
    # n-scaling at eps = 1: the ratio should be flat in n.
    n_rows = []
    for n in ([20, 40] if quick else [20, 40, 80, 160]):
        fractions = []
        for seed in seeds:
            profit, bound = _fraction(1.0, n, m, load, seed)
            if bound > 0:
                fractions.append(profit / bound)
        agg = Aggregate.of(fractions)
        n_rows.append([f"n={n}", round(agg.mean, 4), round(agg.std, 4), "", ""])
    result = ExperimentResult(
        key="E3",
        title="Theorem 2: S vs OPT bound under the slack assumption",
        headers=["epsilon", "profit/bound", "std", "empirical ratio", "proven bound"],
        rows=rows + n_rows,
        claim=(
            "Under D >= (1+eps)((W-L)/m + L), S earns a constant fraction "
            "of the OPT bound; the fraction degrades as eps -> 0 and is "
            "flat in n."
        ),
    )
    result.notes.append(
        "the proven bound is a worst-case guarantee; empirical ratios are "
        "expected to be orders of magnitude smaller"
    )
    result.notes.append(
        "profit/bound uses the LP relaxation, so reported fractions are "
        "conservative (true OPT is below the bound)"
    )
    return result
