"""E3 -- Theorem 2: constant competitiveness under the slack assumption.

Workloads whose deadlines all satisfy
``D >= (1+eps)((W-L)/m + L)`` are run under scheduler S(eps) at speed 1
and normalized by the LP upper bound on clairvoyant OPT.  The theorem
promises a ratio bounded by a function of eps alone (O(1/eps^6)); the
empirical expectation is (a) the ratio is a modest constant, far below
the proven bound, (b) it degrades as eps -> 0, and (c) it is flat in
the job count (no dependence on n).
"""

from __future__ import annotations

import math

from repro.analysis import interval_lp_upper_bound
from repro.analysis.stats import Aggregate
from repro.analysis.sweep import sweep_values
from repro.core import Constants, SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def _fraction(epsilon: float, n_jobs: int, m: int, load: float, seed: int) -> tuple[float, float]:
    """(S profit, LP bound) on one sampled workload."""
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs,
            m=m,
            load=load,
            family="mixed",
            epsilon=epsilon,
            deadline_policy="slack",
            slack_range=(1.0, 1.5),
            profit="uniform",
            seed=seed,
        )
    )
    result = Simulator(m=m, scheduler=SNSScheduler(epsilon=epsilon)).run(specs)
    bound = interval_lp_upper_bound(specs, m)
    return result.total_profit, bound


def _thm2_value(point: dict, seed: int) -> float:
    """Sweep cell: profit/bound, or NaN when the bound is degenerate."""
    profit, bound = _fraction(
        point["epsilon"], point["n_jobs"], point["m"], point["load"], seed
    )
    return profit / bound if bound > 0 else math.nan


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the Theorem 2 table (sweeps shard across
    ``REPRO_SWEEP_WORKERS`` processes when set)."""
    m = 8
    n_jobs = 40 if quick else 80
    seeds = [0, 1] if quick else [0, 1, 2, 3, 4]
    load = 2.0  # mild overload: someone must lose, so ratios are informative
    epsilons = [0.25, 0.5, 1.0, 2.0] if quick else [0.25, 0.5, 1.0, 2.0, 4.0]
    eps_grid = {
        "epsilon": epsilons,
        "n_jobs": [n_jobs],
        "m": [m],
        "load": [load],
    }
    rows = []
    for point, values in sweep_values(_thm2_value, eps_grid, seeds):
        eps = point["epsilon"]
        agg = Aggregate.of([v for v in values if not math.isnan(v)])
        proven = Constants.from_epsilon(eps).competitive_ratio_throughput
        rows.append(
            [
                eps,
                round(agg.mean, 4),
                round(agg.std, 4),
                round(1.0 / agg.mean, 2) if agg.mean > 0 else float("inf"),
                f"{proven:.3g}",
            ]
        )
    # n-scaling at eps = 1: the ratio should be flat in n.
    n_grid = {
        "n_jobs": [20, 40] if quick else [20, 40, 80, 160],
        "epsilon": [1.0],
        "m": [m],
        "load": [load],
    }
    n_rows = []
    for point, values in sweep_values(_thm2_value, n_grid, seeds):
        agg = Aggregate.of([v for v in values if not math.isnan(v)])
        n_rows.append(
            [f"n={point['n_jobs']}", round(agg.mean, 4), round(agg.std, 4), "", ""]
        )
    result = ExperimentResult(
        key="E3",
        title="Theorem 2: S vs OPT bound under the slack assumption",
        headers=["epsilon", "profit/bound", "std", "empirical ratio", "proven bound"],
        rows=rows + n_rows,
        claim=(
            "Under D >= (1+eps)((W-L)/m + L), S earns a constant fraction "
            "of the OPT bound; the fraction degrades as eps -> 0 and is "
            "flat in n."
        ),
    )
    result.notes.append(
        "the proven bound is a worst-case guarantee; empirical ratios are "
        "expected to be orders of magnitude smaller"
    )
    result.notes.append(
        "profit/bound uses the LP relaxation, so reported fractions are "
        "conservative (true OPT is below the bound)"
    )
    return result
