"""E10 -- The constants table (paper Tables 1-3, made quantitative).

For a grid of eps, derives delta, c, b, a, Lemma 5's completion
coefficient, and the proven competitive-ratio bounds for throughput
(Lemma 10) and general profit (Lemma 22).  The last column multiplies
the bound by eps^6: its flattening as eps -> 0 exhibits the O(1/eps^6)
growth the theorems state.
"""

from __future__ import annotations

from repro.core import Constants
from repro.experiments.common import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the derived-constants table."""
    epsilons = (
        [0.25, 0.5, 1.0, 2.0]
        if quick
        else [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    )
    rows = []
    for eps in epsilons:
        consts = Constants.from_epsilon(eps)
        ratio = consts.competitive_ratio_throughput
        rows.append(
            [
                eps,
                round(consts.delta, 4),
                round(consts.c, 2),
                round(consts.b, 4),
                round(consts.a, 3),
                round(consts.completion_coefficient, 5),
                f"{ratio:.4g}",
                f"{consts.competitive_ratio_profit:.4g}",
                f"{ratio * eps ** 6:.4g}",
            ]
        )
    result = ExperimentResult(
        key="E10",
        title="Derived constants and proven bounds (O(1/eps^6))",
        headers=[
            "epsilon",
            "delta",
            "c",
            "b",
            "a",
            "Lemma5 coeff",
            "ratio (Thm2)",
            "ratio (Thm3)",
            "ratio*eps^6",
        ],
        rows=rows,
        claim=(
            "All constants are positive and finite for every eps > 0, and "
            "the proven competitive ratio grows as O(1/eps^6)."
        ),
    )
    result.notes.append(
        "c uses the repository's strictly-positive-coefficient choice "
        "(see repro.core.theory module docstring); the paper's minimal c "
        "makes the Lemma 5 coefficient non-positive under exact algebra"
    )
    return result
