"""E9 -- Ablations of S's design decisions (paper remark + conclusion).

Compares, on assumption-respecting overload workloads:

* **S** -- the paper's algorithm;
* **no-admission** -- conditions (1)/(2) removed;
* **work-conserving** -- spare processors top up admitted jobs (the
  practical variant the paper's conclusion asks for);
* **p/W density** -- classical density instead of ``p/(x n)``.

Reported per variant: profit fraction of the LP bound and preemptions
(the conclusion's other concern).
"""

from __future__ import annotations

from repro.analysis import interval_lp_upper_bound
from repro.analysis.stats import Aggregate
from repro.baselines import (
    EagerPromotionSNS,
    SNSNoAdmission,
    SNSWorkDensity,
    WorkConservingSNS,
)
from repro.core import SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload

def _paper_c(eps: float) -> SNSScheduler:
    """S with the paper's minimal band width c = 1 + 1/(delta*eps).

    The algorithm is identical in structure; only Lemma 5's coefficient
    positivity (our default widens c to guarantee it) is given up.
    """
    from repro.core import Constants

    delta = eps / 4.0
    return SNSScheduler(
        constants=Constants.from_epsilon(eps, c=1.0 + 1.0 / (delta * eps))
    )


VARIANTS = {
    "S": lambda eps: SNSScheduler(epsilon=eps),
    "S-no-admission": lambda eps: SNSNoAdmission(epsilon=eps),
    "S-work-conserving": lambda eps: WorkConservingSNS(epsilon=eps),
    "S-p/W-density": lambda eps: SNSWorkDensity(epsilon=eps),
    "S-eager-promote": lambda eps: EagerPromotionSNS(epsilon=eps),
    "S-paper-c": _paper_c,
}


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the ablation table."""
    m = 8
    eps = 1.0
    n_jobs = 40 if quick else 80
    seeds = [0, 1] if quick else [0, 1, 2, 3]
    loads = [1.0, 4.0] if quick else [1.0, 2.0, 4.0, 8.0]
    rows = []
    for load in loads:
        for name, factory in VARIANTS.items():
            fracs, preemptions = [], []
            for seed in seeds:
                specs = generate_workload(
                    WorkloadConfig(
                        n_jobs=n_jobs,
                        m=m,
                        load=load,
                        family="mixed",
                        epsilon=eps,
                        deadline_policy="slack",
                        slack_range=(1.0, 1.5),
                        profit="heavy_tailed",
                        seed=seed,
                    )
                )
                bound = interval_lp_upper_bound(specs, m)
                if bound <= 0:
                    continue
                res = Simulator(m=m, scheduler=factory(eps)).run(specs)
                fracs.append(res.total_profit / bound)
                preemptions.append(float(res.counters.preemptions))
            rows.append(
                [
                    load,
                    name,
                    round(Aggregate.of(fracs).mean, 4),
                    round(Aggregate.of(preemptions).mean, 1),
                ]
            )
    # The admission-trap stream: dense-but-doomed jobs alternate with
    # feasible payloads.  Without conditions (1)+(2) the machine chases
    # traps and completes ~nothing.
    from repro.workloads import admission_trap

    trap_specs = admission_trap(m, n_pairs=20 if quick else 50)
    payload_profit = sum(
        sp.profit for sp in trap_specs if sp.structure.name == "payload"
    )
    for name, factory in VARIANTS.items():
        res = Simulator(m=m, scheduler=factory(eps)).run(trap_specs)
        rows.append(
            [
                "trap",
                name,
                round(res.total_profit / payload_profit, 4),
                res.counters.preemptions,
            ]
        )

    result = ExperimentResult(
        key="E9",
        title="Ablations: admission control, work conservation, density",
        headers=["load", "variant", "profit/bound", "preemptions"],
        rows=rows,
        claim=(
            "On benign random loads admission control costs a constant "
            "factor, but on dense-but-doomed (trap) streams it is the "
            "difference between ~0 and near-full profit; work "
            "conservation only helps; the p/(x n) density matters when "
            "profits decouple from work."
        ),
    )
    result.notes.append(
        "trap rows are normalized by the total feasible (payload) profit, "
        "the exact OPT on that instance"
    )
    return result
