"""Shared infrastructure for experiment runners.

Every experiment (E1..E14 in DESIGN.md) is a function
``run(quick=False) -> ExperimentResult`` that regenerates one table or
figure-equivalent of the reproduction.  ``quick=True`` shrinks the
configuration for CI/benchmark use while preserving the qualitative
shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.tables import format_markdown, format_table


@dataclass
class ExperimentResult:
    """A regenerated table plus its provenance."""

    key: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    #: the paper's qualitative claim this table checks
    claim: str = ""
    #: free-form observations filled by the runner
    notes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Render for terminal output."""
        parts = [format_table(self.headers, self.rows, title=f"{self.key}: {self.title}")]
        if self.claim:
            parts.append(f"claim: {self.claim}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        """Render for EXPERIMENTS.md."""
        parts = [f"### {self.key}: {self.title}", ""]
        if self.claim:
            parts += [f"**Claim.** {self.claim}", ""]
        parts.append(format_markdown(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts += [f"- {note}" for note in self.notes]
        return "\n".join(parts)


def first_record(result) -> Any:
    """The single completion record of a one-job run."""
    (record,) = result.records.values()
    return record
