"""E15 -- Sharded cluster vs single service.

Not a paper claim: this table certifies the :mod:`repro.cluster`
subsystem against the monolithic service it is built from.  For each
router it streams the same workload through a 4-shard in-process
cluster and reports completions, sheds, total profit and wall-clock
against the single-service run over all machines.

Two things to read off the table:

* routing cost -- a sharded cluster partitions the machines, so a job
  meets a pool of ``m/k`` processors and S computes its allotment (and
  admission) against that smaller pool; profit relative to the
  ``single`` row is the price of partitioning, and it varies by router
  because placement decides which shard's queue a job competes in;
* determinism -- the ``consistent-hash`` row is bit-reproducible
  (placement is a pure function of the job id), which is the
  configuration the equivalence tests pin against independent
  per-shard services.
"""

from __future__ import annotations

import time

from repro.cluster import ClusterService, ShardConfig, make_router
from repro.cluster.router import ROUTERS
from repro.core import SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.service import SchedulingService
from repro.workloads import WorkloadConfig, generate_workload


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the cluster-vs-single-service table."""
    n_jobs, m = (150, 16) if quick else (1500, 32)
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs, m=m, load=3.0, family="mixed", epsilon=1.0, seed=7
        )
    )
    config = ShardConfig(
        m=1, scheduler="sns", scheduler_kwargs={"epsilon": 1.0}
    )
    rows = []

    t0 = time.perf_counter()
    single = SchedulingService(m, SNSScheduler(epsilon=1.0)).run_stream(specs)
    elapsed = time.perf_counter() - t0
    rows.append(
        [
            "single",
            1,
            single.result.counters.completions,
            single.num_shed,
            round(single.total_profit, 4),
            round(elapsed, 4),
        ]
    )

    for name in sorted(ROUTERS):
        cluster = ClusterService(
            m, 4, config=config, router=make_router(name), mode="inprocess"
        )
        t0 = time.perf_counter()
        result = cluster.run_stream(specs)
        elapsed = time.perf_counter() - t0
        completions = sum(
            r.result.counters.completions for r in result.shard_results
        )
        rows.append(
            [
                name,
                4,
                completions,
                result.num_shed,
                round(result.total_profit, 4),
                round(elapsed, 4),
            ]
        )

    return ExperimentResult(
        key="E15",
        title="Sharded cluster vs single service",
        headers=["router", "shards", "completed", "shed", "profit", "wall (s)"],
        rows=rows,
        claim=(
            "The sharded cluster serves the same stream as the single "
            "service, with per-router profit reflecting placement quality."
        ),
    )
