"""E4 -- Corollary 1: ``(2+eps)`` speed suffices without assumptions.

Workloads with *tight* deadlines (a small factor above the clairvoyant
feasibility limit ``max(L, W/m)``, violating Theorem 2's assumption)
are run under S at speeds 1 .. 3, always normalized by the *speed-1* LP
bound.  Corollary 1 predicts the profit fraction becomes a healthy
constant once speed reaches about ``2 + eps``; Theorem 1 says no
semi-non-clairvoyant scheduler can be constant-competitive below
``2 - 1/m`` on such inputs.
"""

from __future__ import annotations

from repro.analysis import interval_lp_upper_bound
from repro.analysis.stats import Aggregate
from repro.core import SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the speed-augmentation sweep."""
    m = 8
    epsilon = 0.5
    n_jobs = 40 if quick else 80
    seeds = [0, 1] if quick else [0, 1, 2, 3]
    speeds = [1.0, 1.5, 2.0, 2.5, 3.0]
    # Coarse node works so fractional speeds bite (see E1 note).
    family_kwargs = {
        "min_width": 2,
        "max_width": 24,
        "min_node_work": 8,
        "max_node_work": 32,
    }
    base = dict(
        n_jobs=n_jobs,
        m=m,
        load=1.5,
        family="fork_join",
        epsilon=epsilon,
        deadline_policy="tight",
        tight_factor=1.1,
        profit="uniform",
        family_kwargs=family_kwargs,
    )
    rows = []
    for speed in speeds:
        fractions = []
        for seed in seeds:
            specs = generate_workload(WorkloadConfig(seed=seed, **base))
            bound = interval_lp_upper_bound(specs, m)
            if bound <= 0:
                continue
            result = Simulator(
                m=m, scheduler=SNSScheduler(epsilon=epsilon), speed=speed
            ).run(specs)
            fractions.append(result.total_profit / bound)
        agg = Aggregate.of(fractions)
        rows.append([speed, round(agg.mean, 4), round(agg.std, 4), agg.n])
    result = ExperimentResult(
        key="E4",
        title="Corollary 1: speed augmentation on tight-deadline workloads",
        headers=["speed", "profit/bound(speed-1 OPT)", "std", "runs"],
        rows=rows,
        claim=(
            "With deadlines near max(L, W/m) (assumption violated), S's "
            "fraction of the speed-1 OPT bound is poor at speed 1 and "
            "rises to a solid constant by speed ~2+eps."
        ),
    )
    lo, hi = rows[0][1], rows[-1][1]
    result.notes.append(
        f"fraction at speed 1: {lo}; at speed 3: {hi} "
        f"(gain x{hi / lo if lo > 0 else float('inf'):.2f})"
    )
    return result
