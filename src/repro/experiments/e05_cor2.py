"""E5 -- Corollary 2: ``(1+eps)`` speed for "reasonable" deadlines.

Deadlines exactly at the semi-non-clairvoyant bound ``(W-L)/m + L``
(slack factor 1, i.e. *not* meeting Theorem 2's (1+eps) assumption but
meeting Corollary 2's weaker one) are run under S at speeds ``1+eps``
for several eps, against the speed-1 LP bound.  Corollary 2 predicts
modest augmentation already yields a constant fraction -- contrast with
E4 where deadlines were below the bound and ~2x speed was needed.
"""

from __future__ import annotations

import math

from repro.analysis import interval_lp_upper_bound
from repro.analysis.stats import Aggregate
from repro.analysis.sweep import sweep_values
from repro.core import SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import JobSpec, Simulator
from repro.workloads import WorkloadConfig, generate_workload, sequential_bound


def _reasonable_workload(n_jobs: int, m: int, seed: int) -> list[JobSpec]:
    """Mixed workload with deadlines at exactly (W-L)/m + L."""
    base = generate_workload(
        WorkloadConfig(
            n_jobs=n_jobs,
            m=m,
            load=1.5,
            family="mixed",
            epsilon=0.5,  # placeholder; deadlines replaced below
            deadline_policy="slack",
            profit="uniform",
            seed=seed,
        )
    )
    specs = []
    for sp in base:
        rel = max(1, math.ceil(sequential_bound(sp.structure, m)))
        specs.append(
            JobSpec(
                sp.job_id,
                sp.structure,
                arrival=sp.arrival,
                deadline=sp.arrival + rel,
                profit=sp.profit,
            )
        )
    return specs


def _cor2_value(point: dict, seed: int) -> float:
    """Sweep cell: profit/bound at the point's speed, NaN if the bound
    is degenerate (matching the serial loop's skip)."""
    eps = point["epsilon"]
    m = point["m"]
    specs = _reasonable_workload(point["n_jobs"], m, seed)
    bound = interval_lp_upper_bound(specs, m)
    if bound <= 0:
        return math.nan
    speed = 1.0 + eps if point["augmented"] else 1.0
    result = Simulator(
        m=m, scheduler=SNSScheduler(epsilon=eps), speed=speed
    ).run(specs)
    return result.total_profit / bound


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the Corollary 2 table (sweeps shard across
    ``REPRO_SWEEP_WORKERS`` processes when set)."""
    m = 8
    n_jobs = 40 if quick else 80
    seeds = [0, 1] if quick else [0, 1, 2, 3]
    epsilons = [0.25, 0.5, 1.0]
    grid = {
        "epsilon": epsilons,
        "augmented": [False, True],
        "n_jobs": [n_jobs],
        "m": [m],
    }
    rows = []
    for point, values in sweep_values(_cor2_value, grid, seeds):
        eps = point["epsilon"]
        speed = 1.0 + eps if point["augmented"] else 1.0
        agg = Aggregate.of([v for v in values if not math.isnan(v)])
        rows.append([eps, speed, round(agg.mean, 4), round(agg.std, 4), agg.n])
    result = ExperimentResult(
        key="E5",
        title="Corollary 2: (1+eps) speed with deadlines >= (W-L)/m + L",
        headers=["epsilon", "speed", "profit/bound", "std", "runs"],
        rows=rows,
        claim=(
            "With 'reasonable' deadlines (at the semi-non-clairvoyant "
            "bound), speed 1+eps already restores a constant fraction of "
            "the speed-1 OPT bound."
        ),
    )
    return result
