"""E7 -- S against classical baselines across the load spectrum.

Two workload regimes:

* a *load sweep* of assumption-respecting mixed workloads (0.5x to 8x
  capacity): at low load everything completes everything; as overload
  grows, work-conserving deadline-oblivious baselines (EDF, FIFO)
  collapse while S's admission control holds a constant fraction;
* the *zero-slack domino* stream (deadlines far below the paper's
  bound): everyone fails, including S -- the empirical face of
  Theorem 1's impossibility and the reason the assumption exists.
  With speed 2.5 (~Corollary 1), S recovers.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import interval_lp_upper_bound
from repro.analysis.stats import Aggregate
from repro.baselines import (
    FIFOScheduler,
    GlobalEDF,
    GreedyDensity,
    LeastLaxityFirst,
    RandomScheduler,
)
from repro.core import SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, edf_domino, generate_workload

SCHEDULERS = {
    "S(eps=1)": lambda: SNSScheduler(epsilon=1.0),
    "EDF": GlobalEDF,
    "EDF-skip": lambda: GlobalEDF(skip_hopeless=True),
    "LLF": LeastLaxityFirst,
    "GreedyDensity": GreedyDensity,
    "FIFO": FIFOScheduler,
    "Random": lambda: RandomScheduler(0),
}


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the baseline-comparison tables."""
    m = 8
    n_jobs = 40 if quick else 80
    seeds = [0, 1] if quick else [0, 1, 2]
    loads = [0.5, 2.0, 8.0] if quick else [0.5, 1.0, 2.0, 4.0, 8.0]
    rows = []
    for load in loads:
        per_sched: dict[str, list[float]] = {name: [] for name in SCHEDULERS}
        for seed in seeds:
            specs = generate_workload(
                WorkloadConfig(
                    n_jobs=n_jobs,
                    m=m,
                    load=load,
                    family="mixed",
                    epsilon=1.0,
                    deadline_policy="slack",
                    slack_range=(1.0, 1.5),
                    profit="heavy_tailed",
                    seed=seed,
                )
            )
            bound = interval_lp_upper_bound(specs, m)
            if bound <= 0:
                continue
            for name, factory in SCHEDULERS.items():
                res = Simulator(m=m, scheduler=factory()).run(specs)
                per_sched[name].append(res.total_profit / bound)
        rows.append(
            [load]
            + [round(Aggregate.of(per_sched[name]).mean, 4) for name in SCHEDULERS]
        )

    # Domino stream: zero-slack deadlines, everyone should fail at speed 1.
    domino = edf_domino(m, 30 if quick else 60)
    feasible = len(domino)
    domino_rows = []
    for name, factory in SCHEDULERS.items():
        res = Simulator(m=m, scheduler=factory()).run(domino)
        res_fast = Simulator(m=m, scheduler=factory(), speed=2.5).run(domino)
        domino_rows.append(
            [
                f"domino:{name}",
                round(res.total_profit / feasible, 4),
                round(res_fast.total_profit / feasible, 4),
            ]
            + [""] * (len(SCHEDULERS) - 2)
        )

    result = ExperimentResult(
        key="E7",
        title="S vs baselines: load sweep + zero-slack domino",
        headers=["load"] + list(SCHEDULERS),
        rows=rows,
        claim=(
            "At low load all schedulers match OPT; under overload, "
            "admission-controlled S retains a constant fraction while "
            "EDF/FIFO collapse; on zero-slack streams (assumption "
            "violated) everyone fails at speed 1."
        ),
    )
    result.notes.append(
        "domino rows: columns 2-3 are fraction of jobs completed at "
        "speed 1 and speed 2.5 respectively"
    )
    result.rows.extend(domino_rows)
    return result
