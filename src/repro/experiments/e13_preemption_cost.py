"""E13 -- Preemption cost (the conclusion's "fewer preemptions" motive).

The paper's conclusion asks for schedulers with fewer preemptions; this
experiment quantifies *why*: the engine charges configurable overhead
(extra work) to every preempted node, and the sweep shows how each
scheduler's profit degrades with the overhead.  S preempts rarely
(fixed allotments, admission-stable queues), so its curve should be
nearly flat while preemption-happy baselines decay.

A second panel compares admission styles at zero overhead:
S (density bands) vs AdmissionEDF (demand-bound test) vs plain EDF,
isolating what the band machinery adds over "any admission control".
"""

from __future__ import annotations

from repro.analysis import interval_lp_upper_bound
from repro.analysis.stats import Aggregate
from repro.baselines import GlobalEDF, GreedyDensity
from repro.baselines.admission_edf import AdmissionEDF
from repro.core import SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload

SCHEDULERS = {
    "S(eps=1)": lambda: SNSScheduler(epsilon=1.0),
    "EDF": GlobalEDF,
    "AdmissionEDF": AdmissionEDF,
    "GreedyDensity": GreedyDensity,
}


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the preemption-cost table."""
    m = 8
    n_jobs = 40 if quick else 80
    seeds = [0, 1] if quick else [0, 1, 2, 3]
    overheads = [0.0, 1.0] if quick else [0.0, 0.5, 1.0, 2.0]
    base = dict(
        n_jobs=n_jobs,
        m=m,
        load=2.0,
        family="mixed",
        epsilon=1.0,
        deadline_policy="slack",
        slack_range=(1.0, 1.5),
        profit="heavy_tailed",
    )
    rows = []
    for overhead in overheads:
        per: dict[str, list[float]] = {name: [] for name in SCHEDULERS}
        preempts: dict[str, list[float]] = {name: [] for name in SCHEDULERS}
        for seed in seeds:
            specs = generate_workload(WorkloadConfig(seed=seed, **base))
            bound = interval_lp_upper_bound(specs, m)
            if bound <= 0:
                continue
            for name, factory in SCHEDULERS.items():
                res = Simulator(
                    m=m,
                    scheduler=factory(),
                    preemption_overhead=overhead,
                ).run(specs)
                per[name].append(res.total_profit / bound)
                preempts[name].append(float(res.counters.preemptions))
        row = [overhead]
        for name in SCHEDULERS:
            row.append(round(Aggregate.of(per[name]).mean, 4))
        for name in SCHEDULERS:
            row.append(round(Aggregate.of(preempts[name]).mean, 1))
        rows.append(row)

    headers = (
        ["overhead"]
        + [f"{name}" for name in SCHEDULERS]
        + [f"preempts:{name}" for name in SCHEDULERS]
    )
    result = ExperimentResult(
        key="E13",
        title="Preemption cost: profit vs per-preemption overhead",
        headers=headers,
        rows=rows,
        claim=(
            "S's fixed-allotment design preempts orders of magnitude less "
            "than work-conserving baselines, so its profit is nearly flat "
            "in the per-preemption overhead while theirs degrades -- the "
            "conclusion's 'fewer preemptions' goal, quantified."
        ),
    )
    # degradation note
    first, last = rows[0], rows[-1]
    for i, name in enumerate(SCHEDULERS, start=1):
        drop = first[i] - last[i]
        result.notes.append(
            f"{name}: profit drop {drop:+.4f} from overhead 0 to "
            f"{overheads[-1]}"
        )
    return result
