"""E1 -- Figure 1 / Theorem 1: the semi-non-clairvoyant lower bound.

The Figure 1 DAG (a chain of length ``W/m`` in parallel with a block of
``W - W/m`` independent nodes) is the paper's witness that any
semi-non-clairvoyant scheduler needs speed augmentation ``2 - 1/m``:
an unlucky ready-node order drains the block before touching the chain,
taking ``(W-L)/m + L`` time, while the clairvoyant order finishes in
``W/m = L``.

The table reports, per machine size ``m``: the clairvoyant completion
time, the adversarial-pick completion time, their ratio (predicted
``2 - 1/m``), and the smallest simulated speed at which the adversarial
pick still meets the deadline ``W/m`` (predicted ``2 - 1/m``).
"""

from __future__ import annotations

import math

from repro.baselines import FIFOScheduler
from repro.experiments.common import ExperimentResult, first_record
from repro.sim import (
    AdversarialPicker,
    CriticalPathPicker,
    RandomPicker,
    Simulator,
)
from repro.workloads import fig1_jobs


def _completion_time(m: int, specs, picker, speed: float = 1.0) -> int:
    sim = Simulator(
        m=m, scheduler=FIFOScheduler(), picker=picker, speed=speed
    )
    record = first_record(sim.run([s for s in specs]))
    assert record.completion_time is not None
    return record.completion_time - record.arrival


def _min_meeting_speed(m: int, chain_node_work: int) -> float:
    """Smallest speed (0.01 grid) where the adversarial pick meets W/m."""
    specs = fig1_jobs(
        m, deadline_factor=10.0, node_work=float(chain_node_work)
    )  # deadline far away; we measure completion time directly
    deadline = specs[0].work / m  # the clairvoyant completion time
    lo, hi = 1.0, 2.0
    # binary search to 0.01 on the monotone "meets deadline" predicate
    for _ in range(32):
        mid = (lo + hi) / 2.0
        t = _completion_time(m, specs, AdversarialPicker(), speed=mid)
        if t <= deadline:
            hi = mid
        else:
            lo = mid
        if hi - lo < 0.005:
            break
    return round(hi, 3)


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the Figure 1 lower-bound table."""
    ms = [2, 4, 8] if quick else [2, 4, 8, 16, 32]
    # Coarse node works keep discrete-step speed quantization negligible
    # (a node of work w at speed s occupies ceil(w/s) whole steps, so the
    # relative rounding error is ~s/w).
    node = 16 if quick else 64
    rows = []
    for m in ms:
        specs = fig1_jobs(m, deadline_factor=10.0, node_work=float(node))
        work, span = specs[0].work, specs[0].span
        t_clair = _completion_time(m, specs, CriticalPathPicker())
        t_adv = _completion_time(m, specs, AdversarialPicker())
        t_rand = _completion_time(m, specs, RandomPicker(0))
        predicted = 2.0 - 1.0 / m
        min_speed = _min_meeting_speed(m, node)
        rows.append(
            [
                m,
                work,
                span,
                t_clair,
                t_adv,
                t_rand,
                round(t_adv / t_clair, 4),
                round(predicted, 4),
                min_speed,
            ]
        )
    result = ExperimentResult(
        key="E1",
        title="Figure 1 / Theorem 1: semi-non-clairvoyant lower bound",
        headers=[
            "m",
            "W",
            "L",
            "T_clairvoyant",
            "T_adversarial",
            "T_random",
            "adv/clair",
            "2-1/m",
            "min_speed_adv",
        ],
        rows=rows,
        claim=(
            "Adversarial ready-node picks need (W-L)/m + L time vs the "
            "clairvoyant W/m; the ratio and the speed needed to recover "
            "both approach 2 - 1/m."
        ),
    )
    for row in rows:
        m, ratio, predicted = row[0], row[6], row[7]
        if abs(ratio - predicted) > 0.05 * predicted:
            result.notes.append(
                f"m={m}: measured ratio {ratio} deviates from prediction "
                f"{predicted}"
            )
    if not result.notes:
        result.notes.append("all measured ratios within 5% of 2 - 1/m")
    return result
