"""E6 -- Theorem 3 / Corollary 3: the general-profit scheduler.

Workloads of jobs carrying non-increasing profit functions (flat to the
Theorem 3 knee ``x* >= (1+eps)((W-L)/m + L)``, then linear /
exponential / staircase decay) run under the slot-assigning scheduler
of Section 5, normalized by the piecewise LP bound; a work-conserving
greedy baseline shows the assignment machinery is not vacuous.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import interval_lp_upper_bound
from repro.analysis.stats import Aggregate
from repro.analysis.sweep import sweep_values
from repro.baselines import GreedyDensity
from repro.core import GeneralProfitScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload
from repro.workloads.profits import make_profit_fn_sampler


def _thm3_value(point: dict, seed: int) -> Optional[tuple[float, float]]:
    """Sweep cell: (S fraction, greedy fraction), or ``None`` when the
    bound is degenerate (matching the serial loop's skip)."""
    m = point["m"]
    epsilon = point["epsilon"]
    specs = generate_workload(
        WorkloadConfig(
            n_jobs=point["n_jobs"],
            m=m,
            load=point["load"],
            family="fork_join",
            epsilon=epsilon,
            profit_fn_sampler=make_profit_fn_sampler(point["decay"]),
            seed=seed,
        )
    )
    bound = interval_lp_upper_bound(specs, m)
    if bound <= 0:
        return None
    res_s = Simulator(
        m=m, scheduler=GeneralProfitScheduler(epsilon=epsilon)
    ).run(specs)
    # Greedy runs jobs forever (no deadline); horizon keeps the
    # comparison finite.
    horizon = max(sp.arrival for sp in specs) * 2 + 4000
    res_g = Simulator(m=m, scheduler=GreedyDensity(), horizon=horizon).run(specs)
    return res_s.total_profit / bound, res_g.total_profit / bound


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the general-profit table (sweeps shard across
    ``REPRO_SWEEP_WORKERS`` processes when set)."""
    m = 4
    epsilon = 1.0
    n_jobs = 20 if quick else 50
    seeds = [0, 1] if quick else [0, 1, 2]
    decays = ["linear", "exponential", "staircase"]
    loads = [1.0, 2.0] if quick else [1.0, 2.0, 4.0]
    grid = {
        "decay": decays,
        "load": loads,
        "n_jobs": [n_jobs],
        "m": [m],
        "epsilon": [epsilon],
    }
    rows = []
    for point, values in sweep_values(_thm3_value, grid, seeds):
        pairs = [v for v in values if v is not None]
        s_agg = Aggregate.of([s for s, _g in pairs])
        g_agg = Aggregate.of([g for _s, g in pairs])
        rows.append(
            [
                point["decay"],
                point["load"],
                round(s_agg.mean, 4),
                round(g_agg.mean, 4),
                s_agg.n,
            ]
        )
    result = ExperimentResult(
        key="E6",
        title="Theorem 3: general-profit scheduler vs OPT bound",
        headers=["decay", "load", "S profit/bound", "greedy/bound", "runs"],
        rows=rows,
        claim=(
            "With profit flat to x* >= (1+eps)((W-L)/m + L) and arbitrary "
            "non-increasing decay after, the slot-assigning S earns a "
            "constant fraction of the OPT bound across decay shapes and "
            "loads."
        ),
    )
    return result
