"""Persistence and regression comparison of experiment results.

Experiment tables can be saved as JSON artifacts and later compared
against a fresh run -- the regression-detection workflow for keeping
EXPERIMENTS.md honest as the code evolves.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict
from typing import Any

from repro.experiments.common import ExperimentResult

FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Serialize an experiment result."""
    data = asdict(result)
    data["version"] = FORMAT_VERSION
    return data


def result_from_dict(data: dict[str, Any]) -> ExperimentResult:
    """Rebuild an experiment result."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version}")
    return ExperimentResult(
        key=data["key"],
        title=data["title"],
        headers=list(data["headers"]),
        rows=[list(row) for row in data["rows"]],
        claim=data.get("claim", ""),
        notes=list(data.get("notes", [])),
    )


def save_result(result: ExperimentResult, path: str) -> None:
    """Write an experiment result JSON artifact."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result_to_dict(result), fh, indent=2)


def load_result(path: str) -> ExperimentResult:
    """Read an experiment result JSON artifact."""
    with open(path, encoding="utf-8") as fh:
        return result_from_dict(json.load(fh))


def compare_results(
    baseline: ExperimentResult,
    current: ExperimentResult,
    rel_tol: float = 0.25,
) -> list[str]:
    """Regression check: numeric cells within ``rel_tol`` of baseline.

    Returns human-readable deviation messages (empty = no regressions).
    Non-numeric cells must match exactly; structural changes (headers,
    row count) are reported as deviations, not errors.
    """
    problems: list[str] = []
    if baseline.headers != current.headers:
        problems.append(
            f"headers changed: {baseline.headers} -> {current.headers}"
        )
        return problems
    if len(baseline.rows) != len(current.rows):
        problems.append(
            f"row count changed: {len(baseline.rows)} -> {len(current.rows)}"
        )
        return problems
    for r, (brow, crow) in enumerate(zip(baseline.rows, current.rows)):
        for c, (bval, cval) in enumerate(zip(brow, crow)):
            name = f"row {r} col {baseline.headers[c]!r}"
            b_num = _as_number(bval)
            c_num = _as_number(cval)
            if b_num is None or c_num is None:
                if str(bval) != str(cval):
                    problems.append(f"{name}: {bval!r} != {cval!r}")
                continue
            if math.isclose(b_num, 0.0, abs_tol=1e-12):
                if abs(c_num) > rel_tol:
                    problems.append(f"{name}: {b_num} -> {c_num}")
            elif abs(c_num - b_num) > rel_tol * abs(b_num):
                problems.append(f"{name}: {b_num} -> {c_num}")
    return problems


def _as_number(value: Any):
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value))
    except (TypeError, ValueError):
        return None
