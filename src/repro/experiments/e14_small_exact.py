"""E14 -- True competitive ratios on small instances (exact OPT).

The LP bound used elsewhere over-estimates OPT, so measured ratios are
pessimistic.  On small instances (n <= 10) OPT can be bracketed exactly
by subset enumeration (:mod:`repro.analysis.smallopt`); when the
bracket is tight the reported ratio is against *true* OPT.  This
experiment samples many small overloaded instances, reports how often
the bracket closes, and the distribution of S's exact ratios.
"""

from __future__ import annotations

from repro.analysis.smallopt import small_instance_opt
from repro.analysis.stats import Aggregate, geometric_mean
from repro.core import SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the exact-ratio table."""
    m = 4
    n_jobs = 8
    instances = 10 if quick else 40
    rows = []
    for load in (2.0, 4.0):
        exact_ratios: list[float] = []
        fractions: list[float] = []
        closed = 0
        usable = 0
        for seed in range(instances):
            specs = generate_workload(
                WorkloadConfig(
                    n_jobs=n_jobs,
                    m=m,
                    load=load,
                    family="mixed",
                    epsilon=1.0,
                    deadline_policy="slack",
                    slack_range=(1.0, 1.5),
                    profit="uniform",
                    seed=1000 + seed,
                )
            )
            bracket = small_instance_opt(specs, m)
            if bracket.upper <= 0:
                continue
            usable += 1
            profit = (
                Simulator(m=m, scheduler=SNSScheduler(epsilon=1.0))
                .run(specs)
                .total_profit
            )
            fractions.append(profit / bracket.upper)
            if bracket.exact and profit > 0:
                closed += 1
                exact_ratios.append(bracket.lower / profit)
        agg = Aggregate.of(fractions)
        rows.append(
            [
                load,
                usable,
                closed,
                round(agg.mean, 4),
                round(max(fractions), 4) if fractions else "-",
                round(geometric_mean(exact_ratios), 4) if exact_ratios else "-",
                round(max(exact_ratios), 4) if exact_ratios else "-",
            ]
        )
    result = ExperimentResult(
        key="E14",
        title="Exact OPT on small instances: S's true competitive ratio",
        headers=[
            "load",
            "instances",
            "OPT known exactly",
            "mean profit/OPT-ub",
            "best",
            "geomean exact ratio",
            "worst exact ratio",
        ],
        rows=rows,
        claim=(
            "Against *exact* OPT (subset enumeration, tight brackets) S's "
            "ratio is a small constant -- the LP-normalized fractions "
            "reported elsewhere are conservative."
        ),
    )
    result.notes.append(
        "'exact ratio' rows use only instances where the OPT bracket "
        "closed and S earned positive profit"
    )
    return result
