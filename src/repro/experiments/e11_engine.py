"""E11 -- Simulation-substrate scalability.

Not a paper claim: this table certifies the substrate itself is usable
at experiment scale by measuring wall-clock throughput (simulated
steps/second and jobs/second) as job count and machine size grow.
"""

from __future__ import annotations

import time

from repro.core import SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import WorkloadConfig, generate_workload


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the engine-scalability table."""
    configs = (
        [(50, 8), (100, 16)]
        if quick
        else [(50, 8), (100, 16), (200, 32), (400, 64), (800, 64)]
    )
    rows = []
    for n_jobs, m in configs:
        specs = generate_workload(
            WorkloadConfig(
                n_jobs=n_jobs,
                m=m,
                load=2.0,
                family="mixed",
                epsilon=1.0,
                seed=n_jobs,
            )
        )
        sim = Simulator(m=m, scheduler=SNSScheduler(epsilon=1.0))
        t0 = time.perf_counter()
        result = sim.run(specs)
        elapsed = time.perf_counter() - t0
        steps = result.counters.steps
        rows.append(
            [
                n_jobs,
                m,
                steps,
                result.counters.decisions,
                round(elapsed, 4),
                round(steps / elapsed if elapsed > 0 else float("inf")),
                round(n_jobs / elapsed if elapsed > 0 else float("inf"), 1),
            ]
        )
    return ExperimentResult(
        key="E11",
        title="Engine scalability",
        headers=[
            "jobs",
            "m",
            "sim steps",
            "decisions",
            "wall (s)",
            "steps/s",
            "jobs/s",
        ],
        rows=rows,
        claim="The discrete-time engine scales to experiment sizes.",
    )
