"""E12 -- Beyond the paper: federated, non-clairvoyant, and recurring
tasks (the conclusion's future-work directions).

Three panels:

* **schedulers** -- S vs online federated scheduling (the real-time
  community's allotment rule the paper's descends from) vs the fully
  non-clairvoyant doubling variant, on assumption-respecting overload;
* **diurnal** -- the same schedulers on a diurnal (day/night) demand
  trace, split by arrival phase;
* **periodic** -- a harmonic recurring DAG task set at increasing
  utilization: deadline-miss fractions per scheduler.
"""

from __future__ import annotations

from repro.analysis import interval_lp_upper_bound
from repro.analysis.stats import Aggregate
from repro.baselines import DoublingNonClairvoyant, FederatedScheduler
from repro.core import SNSScheduler
from repro.experiments.common import ExperimentResult
from repro.sim import Simulator
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    harmonic_taskset,
    unroll_periodic,
)
from repro.workloads.dag_families import make_family
from repro.workloads.traces import DiurnalConfig, generate_diurnal_trace

EXTENDED = {
    "S(eps=1)": lambda: SNSScheduler(epsilon=1.0),
    "Federated": FederatedScheduler,
    "NC-doubling": lambda: DoublingNonClairvoyant(epsilon=1.0),
}


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the extensions table."""
    m = 8
    seeds = [0, 1] if quick else [0, 1, 2]
    n_jobs = 40 if quick else 80
    rows = []

    # panel 1: overload sweep
    for load in ([1.0, 4.0] if quick else [1.0, 2.0, 4.0, 8.0]):
        per = {name: [] for name in EXTENDED}
        for seed in seeds:
            specs = generate_workload(
                WorkloadConfig(
                    n_jobs=n_jobs, m=m, load=load, family="mixed",
                    epsilon=1.0, deadline_policy="slack",
                    slack_range=(1.0, 1.5), profit="heavy_tailed", seed=seed,
                )
            )
            bound = interval_lp_upper_bound(specs, m)
            if bound <= 0:
                continue
            for name, factory in EXTENDED.items():
                res = Simulator(m=m, scheduler=factory()).run(specs)
                per[name].append(res.total_profit / bound)
        rows.append(
            [f"load={load}"]
            + [round(Aggregate.of(per[name]).mean, 4) for name in EXTENDED]
        )

    # panel 2: diurnal trace
    per = {name: [] for name in EXTENDED}
    for seed in seeds:
        specs = generate_diurnal_trace(
            DiurnalConfig(n_jobs=n_jobs * 2, m=m, base_load=1.5, swing=0.8,
                          seed=seed)
        )
        bound = interval_lp_upper_bound(specs, m)
        if bound <= 0:
            continue
        for name, factory in EXTENDED.items():
            res = Simulator(m=m, scheduler=factory()).run(specs)
            per[name].append(res.total_profit / bound)
    rows.append(
        ["diurnal"]
        + [round(Aggregate.of(per[name]).mean, 4) for name in EXTENDED]
    )

    # panel 3: periodic task sets at rising utilization
    import numpy as np

    for util in ([0.3, 0.6] if quick else [0.3, 0.5, 0.7, 0.9]):
        per = {name: [] for name in EXTENDED}
        for seed in seeds:
            rng = np.random.default_rng(seed)
            family = make_family("fork_join")
            structures = [family(rng) for _ in range(6)]
            tasks = harmonic_taskset(structures, base_period=64, m=m,
                                     target_utilization=util)
            specs = unroll_periodic(tasks, horizon=512)
            if not specs:
                continue
            for name, factory in EXTENDED.items():
                res = Simulator(m=m, scheduler=factory()).run(specs)
                per[name].append(res.completed_on_time / len(specs))
        rows.append(
            [f"periodic u={util}"]
            + [round(Aggregate.of(per[name]).mean, 4) for name in EXTENDED]
        )

    result = ExperimentResult(
        key="E12",
        title="Extensions: federated, non-clairvoyant, recurring tasks",
        headers=["scenario"] + list(EXTENDED),
        rows=rows,
        claim=(
            "The paper's future-work directions, measured: federated "
            "scheduling (delta=0, no bands) and a fully non-clairvoyant "
            "doubling variant are competitive on benign inputs, with S's "
            "structure paying off as overload grows; on recurring task "
            "sets on-time fractions degrade gracefully with utilization."
        ),
    )
    result.notes.append(
        "load/diurnal rows report profit / LP bound; periodic rows report "
        "the on-time completion fraction"
    )
    return result
